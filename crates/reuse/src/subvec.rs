//! Sub-matrix splitting (Fig. 3 of the paper).
//!
//! A row of the unfolded input matrix has `K` elements; clustering at
//! granularity `L` splits it into `Nnv = ⌈K/L⌉` *sub-vectors*, the last of
//! which may be shorter when `L ∤ K`. Each sub-vector position induces a
//! column range, and the set of ranges partitions `0..K`.

/// Column partition of a `K`-wide unfolded matrix into sub-vectors of
/// nominal length `L`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubVecSplit {
    k: usize,
    l: usize,
    ranges: Vec<(usize, usize)>,
}

impl SubVecSplit {
    /// Builds the partition.
    ///
    /// `l` is clamped to `k` (a sub-vector cannot be longer than a row).
    ///
    /// # Panics
    /// Panics if `k == 0 || l == 0`.
    pub fn new(k: usize, l: usize) -> Self {
        assert!(k > 0, "K must be positive");
        assert!(l > 0, "L must be positive");
        let l = l.min(k);
        let mut ranges = Vec::with_capacity(k.div_ceil(l));
        let mut start = 0;
        while start < k {
            let end = (start + l).min(k);
            ranges.push((start, end));
            start = end;
        }
        Self { k, l, ranges }
    }

    /// Total width `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Effective (clamped) sub-vector length `L`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of sub-vectors per row, the paper's `Nnv = ⌈K/L⌉`.
    pub fn num_sub_vectors(&self) -> usize {
        self.ranges.len()
    }

    /// Column ranges `[(start, end), ...]` partitioning `0..K`.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Width of sub-vector `i`.
    pub fn width(&self, i: usize) -> usize {
        let (s, e) = self.ranges[i];
        e - s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let s = SubVecSplit::new(12, 4);
        assert_eq!(s.num_sub_vectors(), 3);
        assert_eq!(s.ranges(), &[(0, 4), (4, 8), (8, 12)]);
    }

    #[test]
    fn remainder_becomes_short_tail() {
        let s = SubVecSplit::new(10, 4);
        assert_eq!(s.num_sub_vectors(), 3);
        assert_eq!(s.ranges(), &[(0, 4), (4, 8), (8, 10)]);
        assert_eq!(s.width(2), 2);
    }

    #[test]
    fn l_equal_to_k_is_whole_row() {
        let s = SubVecSplit::new(7, 7);
        assert_eq!(s.num_sub_vectors(), 1);
        assert_eq!(s.ranges(), &[(0, 7)]);
    }

    #[test]
    fn l_larger_than_k_is_clamped() {
        let s = SubVecSplit::new(5, 100);
        assert_eq!(s.l(), 5);
        assert_eq!(s.num_sub_vectors(), 1);
    }

    #[test]
    fn ranges_partition_exactly() {
        for k in [1usize, 2, 7, 75, 1600] {
            for l in [1usize, 3, 5, 8, 75] {
                let s = SubVecSplit::new(k, l);
                let mut pos = 0;
                for &(a, b) in s.ranges() {
                    assert_eq!(a, pos, "gap in partition (k={k}, l={l})");
                    assert!(b > a);
                    pos = b;
                }
                assert_eq!(pos, k, "partition does not cover K (k={k}, l={l})");
            }
        }
    }

    #[test]
    fn cifarnet_conv1_policy_granularities() {
        // K = 75 (3 channels, 5x5 kernel); Policy 1: Lmin=5, Lmax=⌈√3⌉·5=10.
        assert_eq!(SubVecSplit::new(75, 5).num_sub_vectors(), 15);
        assert_eq!(SubVecSplit::new(75, 10).num_sub_vectors(), 8);
    }
}
