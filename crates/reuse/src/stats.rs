//! Per-layer reuse observability.

/// A snapshot of what deep reuse did during the latest forward pass of one
/// layer: clustering strength, overheads, and (when CR = 1) the across-batch
/// reuse rate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReuseStats {
    /// Rows clustered (the paper's `N`).
    pub rows: usize,
    /// Sub-vectors per row, `⌈K/L⌉`.
    pub num_sub_vectors: usize,
    /// Mean cluster count `|C|_{nv,avg}` across sub-matrices.
    pub avg_clusters: f64,
    /// Mean remaining ratio `r_c = |C|_{avg} / N` (§III-B).
    pub avg_remaining_ratio: f64,
    /// Mean across-batch reuse rate `R` of completed batches (0 when CR=0).
    pub reuse_rate: f64,
    /// Multiply–adds spent hashing (`N·K·H` over all sub-matrices).
    pub hash_flops: u64,
    /// Multiply–adds spent on centroid–weight GEMMs.
    pub gemm_flops: u64,
    /// Additions spent reconstructing/summing partial outputs.
    pub add_flops: u64,
}

impl ReuseStats {
    /// Total forward multiply–adds actually performed.
    pub fn total_forward_flops(&self) -> u64 {
        self.hash_flops + self.gemm_flops + self.add_flops
    }

    /// Fraction of the dense forward cost that remains, given the dense
    /// baseline `N·K·M`.
    pub fn forward_cost_fraction(&self, baseline: u64) -> f64 {
        if baseline == 0 {
            return 0.0;
        }
        self.total_forward_flops() as f64 / baseline as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = ReuseStats { hash_flops: 10, gemm_flops: 20, add_flops: 5, ..Default::default() };
        assert_eq!(s.total_forward_flops(), 35);
        assert!((s.forward_cost_fraction(70) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        assert_eq!(ReuseStats::default().forward_cost_fraction(0), 0.0);
    }
}
