//! Deep-reuse convolution.
//!
//! This crate implements the computation-reuse machinery of the paper on
//! top of the `adr-nn` layer abstraction:
//!
//! * [`subvec`] — splits the unfolded `N × K` input matrix into
//!   `⌈K/L⌉` sub-matrices of neuron vectors of length `L` (Fig. 3).
//! * [`forward`] — clusters each sub-matrix with LSH, multiplies only the
//!   centroid matrix with the corresponding weight block, and scatters the
//!   centroid outputs back to all members (Fig. 2/3), optionally through the
//!   across-batch cluster-reuse cache (Algorithm 1).
//! * [`backward`] — consumes the *forward* clustering to compute the weight
//!   gradient `∇W_I = x_{c,I}ᵀ · δy_{c,I,s}` (Eq. 9/10) and the input delta
//!   `δx_{c,I} = δy_{c,I,sa} · W_Iᵀ` (Eq. 17/18) without re-clustering —
//!   the paper's key efficiency claim (§IV).
//! * [`layer::ReuseConv2d`] — a drop-in replacement for `adr_nn::conv::Conv2d`
//!   implementing `adr_nn::Layer`, retunable at runtime via
//!   [`layer::ReuseConv2d::set_config`].
//! * [`cost`] — the paper's complexity model (Eqs. 5, 6, 12, 20–23) used by
//!   the adaptive controller to order candidate `{L, H}` settings.
//! * [`stats`] — per-layer observability: remaining ratio `r_c`, cluster
//!   counts, reuse rate `R`, and FLOP breakdowns.
//!
//! # Notation (the paper's Table I → this workspace)
//!
//! | Paper | Meaning | Here |
//! |---|---|---|
//! | `Nb` | batch size | `Tensor4::batch()` |
//! | `Iw, Ih, Ic` | input width/height/channels | `ConvGeom::{in_w, in_h, in_c}` |
//! | `Ow, Oh` | output width/height | `ConvGeom::{out_w(), out_h()}` |
//! | `N` | unfolded rows per batch | `ConvGeom::rows_for_batch(Nb)` |
//! | `K` | weight-kernel size `Ic·kh·kw` | `ConvGeom::k()` |
//! | `M` | number of weight filters | `out_channels` |
//! | `s, kw, kh` | stride, kernel width/height | `ConvGeom::{stride, kernel_w, kernel_h}` |
//! | `Nimg` | unfolded rows per image | `ConvGeom::rows_per_image()` |
//! | `L` | sub-vector length | `ReuseConfig::sub_vector_len` |
//! | `H` | number of hash functions | `ReuseConfig::num_hashes` |
//! | `\|C\|` | number of clusters | `ClusterTable::num_clusters()` |
//! | `r_c` | remaining ratio `\|C\|/N` | `ReuseStats::avg_remaining_ratio` |
//! | `R` | across-batch reuse rate | `ReuseConv2d::mean_reuse_rate()` |
//! | `CR` | cluster-reuse flag | `ReuseConfig::cluster_reuse` |

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod backward;
pub mod cost;
pub mod forward;
pub mod hashpack;
pub mod layer;
pub mod stats;
pub mod subvec;

pub use layer::ReuseConv2d;
pub use stats::ReuseStats;

/// Ways the fault-injection harness can corrupt a layer's LSH families —
/// the two clustering failure extremes a guardrail must catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegenerateClustering {
    /// Every row lands in its own cluster: reuse silently vanishes and the
    /// layer does *more* work than dense (hashing overhead on top of the
    /// full GEMM). Realised by swapping in maximally fine (H = 64)
    /// families while the configured `H` stays small.
    AllSingleton,
    /// Every row collapses into one cluster: the output degenerates to a
    /// single centroid per sub-matrix and the loss destabilises. Realised
    /// by all-zero hyperplane families (every signature is 0).
    OneGiantCluster,
}

/// Clustering scope (§III-B "Cluster Scope"): which pool of neuron vectors
/// may share a cluster. The across-batch level is reached by additionally
/// setting the `CR` flag on the single-batch scope (Algorithm 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClusterScope {
    /// Vectors may only cluster with vectors from the same input image.
    SingleInput,
    /// Vectors cluster across the whole mini-batch (the paper's default).
    #[default]
    SingleBatch,
}

/// Runtime-tunable knobs of a deep-reuse convolution — the parameters the
/// adaptive strategies adjust (§V): sub-vector length `L`, hash count `H`,
/// the cluster-reuse flag `CR`, plus the clustering scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseConfig {
    /// Neuron (sub-)vector length `L`; clamped to `K` by the layer.
    pub sub_vector_len: usize,
    /// Number of LSH hash functions `H` (1..=64).
    pub num_hashes: usize,
    /// Across-batch cluster reuse flag `CR`.
    pub cluster_reuse: bool,
    /// Clustering scope; [`ClusterScope::SingleBatch`] unless overridden
    /// with [`ReuseConfig::with_scope`].
    pub scope: ClusterScope,
}

impl ReuseConfig {
    /// Creates a single-batch-scope config.
    ///
    /// # Panics
    /// Panics if `sub_vector_len == 0` or `num_hashes` is outside `1..=64`.
    pub fn new(sub_vector_len: usize, num_hashes: usize, cluster_reuse: bool) -> Self {
        assert!(sub_vector_len > 0, "sub-vector length must be positive");
        assert!((1..=64).contains(&num_hashes), "num_hashes must be in 1..=64, got {num_hashes}");
        Self { sub_vector_len, num_hashes, cluster_reuse, scope: ClusterScope::SingleBatch }
    }

    /// Overrides the clustering scope.
    ///
    /// # Panics
    /// Panics when combining [`ClusterScope::SingleInput`] with cluster
    /// reuse: the across-batch cache is a *larger* scope, which contradicts
    /// restricting clusters to one image.
    pub fn with_scope(mut self, scope: ClusterScope) -> Self {
        assert!(
            !(self.cluster_reuse && scope == ClusterScope::SingleInput),
            "cluster reuse (across-batch scope) conflicts with single-input scope"
        );
        self.scope = scope;
        self
    }
}
