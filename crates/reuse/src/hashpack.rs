//! Packed multi-sub-matrix hashing.
//!
//! Hashing is the paper's fixed overhead term `N·K·H` (every input element
//! participates in `H` projections exactly once, regardless of `L`). A naive
//! implementation pays per-sub-matrix dispatch costs `⌈K/L⌉` times per
//! forward, which swamps the arithmetic at small `L`. [`PackedHasher`]
//! interleaves all sub-matrix hyperplane families into one `K × H` table so
//! a single streaming pass over each unfolded row produces *every*
//! sub-vector signature, parallelised over row chunks.

use adr_clustering::lsh::LshTable;
use adr_tensor::matrix::Matrix;

use crate::subvec::SubVecSplit;

/// Hyperplanes of all sub-matrices packed for one streaming pass per row.
#[derive(Clone, Debug)]
pub struct PackedHasher {
    k: usize,
    h: usize,
    /// End column of each sub-matrix, ascending.
    boundaries: Vec<usize>,
    /// `K·H` floats: `packed[k·H + j]` is hyperplane `j` of sub-matrix
    /// `sub(k)` at local dimension `k − start(sub(k))`.
    packed: Vec<f32>,
}

impl PackedHasher {
    /// Packs one LSH family per sub-matrix.
    ///
    /// # Panics
    /// Panics when `lsh` is empty (there is nothing to hash against — a
    /// hasher cannot be built before its families exist), when the family
    /// count disagrees with the split (`split.num_sub_vectors()` is always
    /// ≥ 1), when a family's width disagrees with its sub-vector range, or
    /// when the families do not all share the same `H` in `1..=64`.
    pub fn new(split: &SubVecSplit, lsh: &[LshTable]) -> Self {
        assert!(
            !lsh.is_empty(),
            "PackedHasher::new needs at least one LSH family; an empty slice has no H to pack \
             (build the families before the hasher)"
        );
        assert_eq!(lsh.len(), split.num_sub_vectors(), "one LSH family per sub-matrix");
        let h = lsh[0].num_hashes();
        assert!((1..=64).contains(&h), "H must be in 1..=64");
        let k = split.k();
        let mut packed = vec![0.0f32; k * h];
        let mut boundaries = Vec::with_capacity(lsh.len());
        for (i, &(start, end)) in split.ranges().iter().enumerate() {
            assert_eq!(lsh[i].dim(), end - start, "family {i} width mismatch");
            assert_eq!(lsh[i].num_hashes(), h, "family {i} must share H");
            let planes = lsh[i].hyperplanes(); // H × L_i
            for local in 0..(end - start) {
                let dst = &mut packed[(start + local) * h..(start + local) * h + h];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = planes[(j, local)];
                }
            }
            boundaries.push(end);
        }
        Self { k, h, boundaries, packed }
    }

    /// Number of sub-matrices.
    pub fn num_subs(&self) -> usize {
        self.boundaries.len()
    }

    /// Hash count `H`.
    pub fn num_hashes(&self) -> usize {
        self.h
    }

    /// Hashes every row of `x` against every sub-matrix family in one pass.
    ///
    /// Returns row-major signatures: `out[r · num_subs + i]` is row `r`'s
    /// signature in sub-matrix `i`. Results equal calling
    /// `lsh[i].signature` on the corresponding row window (up to
    /// floating-point summation order at exact hyperplane boundaries).
    ///
    /// # Panics
    /// Panics if `x.cols() != K`.
    pub fn hash_all(&self, x: &Matrix) -> Vec<u64> {
        let mut out = Vec::new();
        self.hash_all_into(x, &mut out);
        out
    }

    /// [`Self::hash_all`] into a caller-owned signature buffer, which is
    /// resized (heap capacity reused) first — the arena variant the reuse
    /// forward pass uses so steady-state hashing allocates nothing.
    ///
    /// # Panics
    /// Panics if `x.cols() != K`.
    pub fn hash_all_into(&self, x: &Matrix, out: &mut Vec<u64>) {
        assert_eq!(x.cols(), self.k, "hash_all: column count mismatch");
        let n = x.rows();
        let subs = self.num_subs();
        out.clear();
        out.resize(n * subs, 0);
        // Hashing is a dense projection — compute-bound, like GEMM.
        let threads = adr_tensor::par::compute_threads(n * self.k * self.h);
        adr_tensor::par::run_row_blocks(out, subs, n, threads, |row0, rows_here, chunk| {
            self.hash_rows(x, row0, rows_here, chunk);
        });
    }

    /// Hashes rows `[row0, row0 + count)` into `out` (length `count · subs`).
    fn hash_rows(&self, x: &Matrix, row0: usize, count: usize, out: &mut [u64]) {
        let subs = self.num_subs();
        let h = self.h;
        let mut acc = [0.0f32; 64];
        for r in 0..count {
            let row = x.row(row0 + r);
            let sig_row = &mut out[r * subs..(r + 1) * subs];
            let mut sub = 0usize;
            acc[..h].fill(0.0);
            for (k, &xv) in row.iter().enumerate() {
                if k == self.boundaries[sub] {
                    sig_row[sub] = pack_signs(&acc[..h]);
                    acc[..h].fill(0.0);
                    sub += 1;
                }
                let planes = &self.packed[k * h..k * h + h];
                // Element-wise vector saxpy: bitwise identical to the scalar
                // loop (one IEEE mul + add per projection, same order).
                adr_tensor::kernels::saxpy(&mut acc[..h], xv, planes);
            }
            sig_row[sub] = pack_signs(&acc[..h]);
        }
    }
}

/// Eq. 4 sign-packing: bit `j` set iff `proj_j > 0`.
#[inline]
fn pack_signs(proj: &[f32]) -> u64 {
    let mut sig = 0u64;
    for (j, &v) in proj.iter().enumerate() {
        if v > 0.0 {
            sig |= 1 << j;
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_tensor::rng::AdrRng;

    fn families(split: &SubVecSplit, h: usize, seed: u64) -> Vec<LshTable> {
        let mut rng = AdrRng::seeded(seed);
        split.ranges().iter().map(|&(a, b)| LshTable::new(b - a, h, &mut rng)).collect()
    }

    #[test]
    fn matches_per_family_signatures() {
        let mut rng = AdrRng::seeded(1);
        let x = Matrix::from_fn(40, 23, |_, _| rng.gauss());
        let split = SubVecSplit::new(23, 7); // widths 7,7,7,2
        let lsh = families(&split, 9, 2);
        let packed = PackedHasher::new(&split, &lsh);
        let all = packed.hash_all(&x);
        for (i, &(a, _)) in split.ranges().iter().enumerate() {
            let expect = lsh[i].signatures_range(&x, a);
            for r in 0..40 {
                assert_eq!(all[r * split.num_sub_vectors() + i], expect[r], "row {r} sub {i}");
            }
        }
    }

    #[test]
    fn single_sub_matrix_degenerates_to_whole_row() {
        let mut rng = AdrRng::seeded(3);
        let x = Matrix::from_fn(10, 8, |_, _| rng.gauss());
        let split = SubVecSplit::new(8, 8);
        let lsh = families(&split, 12, 4);
        let packed = PackedHasher::new(&split, &lsh);
        let all = packed.hash_all(&x);
        let expect = lsh[0].signatures(&x);
        assert_eq!(all, expect);
    }

    #[test]
    fn large_input_uses_threads_and_agrees() {
        let mut rng = AdrRng::seeded(5);
        let x = Matrix::from_fn(3000, 30, |_, _| rng.gauss());
        let split = SubVecSplit::new(30, 5);
        let lsh = families(&split, 8, 6);
        let packed = PackedHasher::new(&split, &lsh);
        let all = packed.hash_all(&x);
        // Spot-check a sample of rows against the reference path.
        for &r in &[0usize, 17, 512, 2999] {
            for (i, &(a, b)) in split.ranges().iter().enumerate() {
                let expect = lsh[i].signature(&x.row(r)[a..b]);
                assert_eq!(all[r * 6 + i], expect, "row {r} sub {i}");
            }
        }
    }

    /// Satellite-bug pin: an empty family slice used to fall through
    /// `unwrap_or(0)` into the misleading `"H must be in 1..=64"` panic;
    /// it must get its own descriptive message.
    #[test]
    #[should_panic(expected = "needs at least one LSH family")]
    fn empty_family_slice_gets_descriptive_panic() {
        let split = SubVecSplit::new(8, 4);
        PackedHasher::new(&split, &[]);
    }

    #[test]
    fn hash_all_into_reuses_buffer_and_matches_hash_all() {
        let mut rng = AdrRng::seeded(11);
        let x = Matrix::from_fn(12, 10, |_, _| rng.gauss());
        let split = SubVecSplit::new(10, 4); // widths 4,4,2
        let lsh = families(&split, 6, 12);
        let packed = PackedHasher::new(&split, &lsh);
        let mut arena = vec![u64::MAX; 99]; // stale garbage must be cleared
        packed.hash_all_into(&x, &mut arena);
        assert_eq!(arena, packed.hash_all(&x));
    }

    #[test]
    #[should_panic(expected = "must share H")]
    fn mixed_h_families_panic() {
        let mut rng = AdrRng::seeded(7);
        let split = SubVecSplit::new(8, 4);
        let lsh = vec![LshTable::new(4, 6, &mut rng), LshTable::new(4, 8, &mut rng)];
        PackedHasher::new(&split, &lsh);
    }
}
