//! Packed multi-sub-matrix hashing.
//!
//! Hashing is the paper's fixed overhead term `N·K·H` (every input element
//! participates in `H` projections exactly once, regardless of `L`). A naive
//! implementation pays per-sub-matrix dispatch costs `⌈K/L⌉` times per
//! forward, which swamps the arithmetic at small `L`. [`PackedHasher`]
//! interleaves all sub-matrix hyperplane families into one `K × H` table so
//! a single streaming pass over each unfolded row produces *every*
//! sub-vector signature, parallelised over row chunks.

use adr_clustering::lsh::LshTable;
use adr_tensor::matrix::Matrix;

use crate::subvec::SubVecSplit;

/// Hyperplanes of all sub-matrices packed for one streaming pass per row.
#[derive(Clone, Debug)]
pub struct PackedHasher {
    k: usize,
    h: usize,
    /// End column of each sub-matrix, ascending.
    boundaries: Vec<usize>,
    /// `K·H` floats: `packed[k·H + j]` is hyperplane `j` of sub-matrix
    /// `sub(k)` at local dimension `k − start(sub(k))`.
    packed: Vec<f32>,
}

impl PackedHasher {
    /// Packs one LSH family per sub-matrix.
    ///
    /// # Panics
    /// Panics unless families match the split's widths and all share the
    /// same `H ≤ 64`.
    pub fn new(split: &SubVecSplit, lsh: &[LshTable]) -> Self {
        assert_eq!(lsh.len(), split.num_sub_vectors(), "one LSH family per sub-matrix");
        let h = lsh.first().map(LshTable::num_hashes).unwrap_or(0);
        assert!((1..=64).contains(&h), "H must be in 1..=64");
        let k = split.k();
        let mut packed = vec![0.0f32; k * h];
        let mut boundaries = Vec::with_capacity(lsh.len());
        for (i, &(start, end)) in split.ranges().iter().enumerate() {
            assert_eq!(lsh[i].dim(), end - start, "family {i} width mismatch");
            assert_eq!(lsh[i].num_hashes(), h, "family {i} must share H");
            let planes = lsh[i].hyperplanes(); // H × L_i
            for local in 0..(end - start) {
                let dst = &mut packed[(start + local) * h..(start + local) * h + h];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = planes[(j, local)];
                }
            }
            boundaries.push(end);
        }
        Self { k, h, boundaries, packed }
    }

    /// Number of sub-matrices.
    pub fn num_subs(&self) -> usize {
        self.boundaries.len()
    }

    /// Hash count `H`.
    pub fn num_hashes(&self) -> usize {
        self.h
    }

    /// Hashes every row of `x` against every sub-matrix family in one pass.
    ///
    /// Returns row-major signatures: `out[r · num_subs + i]` is row `r`'s
    /// signature in sub-matrix `i`. Results equal calling
    /// `lsh[i].signature` on the corresponding row window (up to
    /// floating-point summation order at exact hyperplane boundaries).
    ///
    /// # Panics
    /// Panics if `x.cols() != K`.
    pub fn hash_all(&self, x: &Matrix) -> Vec<u64> {
        assert_eq!(x.cols(), self.k, "hash_all: column count mismatch");
        let n = x.rows();
        let subs = self.num_subs();
        let mut out = vec![0u64; n * subs];
        // Hashing is a dense projection — compute-bound, like GEMM.
        let work = n * self.k * self.h;
        let threads = adr_tensor::par::compute_threads(work).min(n.max(1));
        if threads <= 1 {
            self.hash_rows(x, 0, n, &mut out);
            return out;
        }
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = out.as_mut_slice();
            let mut row0 = 0usize;
            while row0 < n {
                let rows_here = rows_per.min(n - row0);
                let (chunk, tail) = rest.split_at_mut(rows_here * subs);
                rest = tail;
                let me = &*self;
                scope.spawn(move || {
                    me.hash_rows(x, row0, rows_here, chunk);
                });
                row0 += rows_here;
            }
        });
        out
    }

    /// Hashes rows `[row0, row0 + count)` into `out` (length `count · subs`).
    fn hash_rows(&self, x: &Matrix, row0: usize, count: usize, out: &mut [u64]) {
        let subs = self.num_subs();
        let h = self.h;
        let mut acc = [0.0f32; 64];
        for r in 0..count {
            let row = x.row(row0 + r);
            let sig_row = &mut out[r * subs..(r + 1) * subs];
            let mut sub = 0usize;
            acc[..h].fill(0.0);
            for (k, &xv) in row.iter().enumerate() {
                if k == self.boundaries[sub] {
                    sig_row[sub] = pack_signs(&acc[..h]);
                    acc[..h].fill(0.0);
                    sub += 1;
                }
                let planes = &self.packed[k * h..k * h + h];
                for (a, &p) in acc[..h].iter_mut().zip(planes) {
                    *a += xv * p;
                }
            }
            sig_row[sub] = pack_signs(&acc[..h]);
        }
    }
}

/// Eq. 4 sign-packing: bit `j` set iff `proj_j > 0`.
#[inline]
fn pack_signs(proj: &[f32]) -> u64 {
    let mut sig = 0u64;
    for (j, &v) in proj.iter().enumerate() {
        if v > 0.0 {
            sig |= 1 << j;
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_tensor::rng::AdrRng;

    fn families(split: &SubVecSplit, h: usize, seed: u64) -> Vec<LshTable> {
        let mut rng = AdrRng::seeded(seed);
        split.ranges().iter().map(|&(a, b)| LshTable::new(b - a, h, &mut rng)).collect()
    }

    #[test]
    fn matches_per_family_signatures() {
        let mut rng = AdrRng::seeded(1);
        let x = Matrix::from_fn(40, 23, |_, _| rng.gauss());
        let split = SubVecSplit::new(23, 7); // widths 7,7,7,2
        let lsh = families(&split, 9, 2);
        let packed = PackedHasher::new(&split, &lsh);
        let all = packed.hash_all(&x);
        for (i, &(a, _)) in split.ranges().iter().enumerate() {
            let expect = lsh[i].signatures_range(&x, a);
            for r in 0..40 {
                assert_eq!(all[r * split.num_sub_vectors() + i], expect[r], "row {r} sub {i}");
            }
        }
    }

    #[test]
    fn single_sub_matrix_degenerates_to_whole_row() {
        let mut rng = AdrRng::seeded(3);
        let x = Matrix::from_fn(10, 8, |_, _| rng.gauss());
        let split = SubVecSplit::new(8, 8);
        let lsh = families(&split, 12, 4);
        let packed = PackedHasher::new(&split, &lsh);
        let all = packed.hash_all(&x);
        let expect = lsh[0].signatures(&x);
        assert_eq!(all, expect);
    }

    #[test]
    fn large_input_uses_threads_and_agrees() {
        let mut rng = AdrRng::seeded(5);
        let x = Matrix::from_fn(3000, 30, |_, _| rng.gauss());
        let split = SubVecSplit::new(30, 5);
        let lsh = families(&split, 8, 6);
        let packed = PackedHasher::new(&split, &lsh);
        let all = packed.hash_all(&x);
        // Spot-check a sample of rows against the reference path.
        for &r in &[0usize, 17, 512, 2999] {
            for (i, &(a, b)) in split.ranges().iter().enumerate() {
                let expect = lsh[i].signature(&x.row(r)[a..b]);
                assert_eq!(all[r * 6 + i], expect, "row {r} sub {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must share H")]
    fn mixed_h_families_panic() {
        let mut rng = AdrRng::seeded(7);
        let split = SubVecSplit::new(8, 4);
        let lsh = vec![LshTable::new(4, 6, &mut rng), LshTable::new(4, 8, &mut rng)];
        PackedHasher::new(&split, &lsh);
    }
}
