//! `ReuseConv2d` — a drop-in deep-reuse replacement for `Conv2d`.

use adr_clustering::assign::ClusterTable;
use adr_clustering::lsh::LshTable;
use adr_clustering::reuse_cache::ReuseCache;
use adr_nn::flops::{FlopMeter, FlopReport};
use adr_nn::init::Init;
use adr_nn::layer::{Layer, Mode, ParamRefMut, Shape3};
use adr_tensor::im2col::{col2im, im2col_into, ConvGeom};
use adr_tensor::matrix::Matrix;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

use crate::backward::reuse_backward;
use crate::cost::{training_step_cost, CostParams};
use crate::forward::{reuse_forward_with, ReuseArena};
use crate::hashpack::PackedHasher;
use crate::stats::ReuseStats;
use crate::subvec::SubVecSplit;
use crate::{ClusterScope, DegenerateClustering, ReuseConfig};

/// Forward-pass state the backward pass consumes (§IV: the backward pass
/// reuses the forward clustering instead of re-clustering).
struct CachedForward {
    tables: Vec<ClusterTable>,
    centroids: Vec<Matrix>,
    batch: usize,
}

/// A convolutional layer that applies adaptive deep reuse.
///
/// Functionally equivalent to `adr_nn::conv::Conv2d` but computes the
/// im2col GEMM through LSH clustering and centroid reuse, and computes both
/// backward products from the forward clustering. The three knobs `{L, H,
/// CR}` can be retuned at any time with [`ReuseConv2d::set_config`]; the
/// adaptive controller in `adr-core` does exactly that between training
/// stages.
pub struct ReuseConv2d {
    name: String,
    geom: ConvGeom,
    out_channels: usize,
    weight: Matrix,
    weight_grad: Matrix,
    weight_vel: Matrix,
    bias: Vec<f32>,
    bias_grad: Vec<f32>,
    bias_vel: Vec<f32>,
    config: ReuseConfig,
    split: SubVecSplit,
    lsh: Vec<LshTable>,
    /// Base seed from which LSH families are derived; families are a pure
    /// function of `(seed, L, H)`, so identical configs hash identically —
    /// a requirement of across-batch cluster reuse (§III-B).
    lsh_seed: u64,
    caches: Vec<ReuseCache>,
    /// Training batches between cache invalidations when `CR = 1`: cached
    /// outputs reflect the weights at insertion time, so during training the
    /// layer drops them every `cache_refresh_every` batches to bound
    /// staleness. Inference forwards never invalidate (weights are frozen).
    cache_refresh_every: usize,
    train_batches_since_refresh: usize,
    cached: Option<CachedForward>,
    /// Packed form of the current `(split, lsh)` pair, rebuilt whenever the
    /// families are (config retune, degenerate-clustering injection, repair).
    /// `None` only during construction, before the first family build.
    hasher: Option<PackedHasher>,
    /// Recycled forward-pass scratch (signatures, miss batches, cluster
    /// outputs) — steady-state forwards reuse its heap capacity.
    arena: ReuseArena,
    /// Recycled im2col output; sized on the first forward, reused after.
    unfolded: Matrix,
    meter: FlopMeter,
    stats: ReuseStats,
}

impl ReuseConv2d {
    /// Creates a reuse convolution with He-normal weights.
    pub fn new(
        name: impl Into<String>,
        geom: ConvGeom,
        out_channels: usize,
        config: ReuseConfig,
        rng: &mut AdrRng,
    ) -> Self {
        let k = geom.k();
        let mut weight = Matrix::zeros(k, out_channels);
        Init::HeNormal.fill(weight.as_mut_slice(), k, out_channels, rng);
        let lsh_seed = rng.next_u64();
        let mut layer = Self {
            name: name.into(),
            geom,
            out_channels,
            weight,
            weight_grad: Matrix::zeros(k, out_channels),
            weight_vel: Matrix::zeros(k, out_channels),
            bias: vec![0.0; out_channels],
            bias_grad: vec![0.0; out_channels],
            bias_vel: vec![0.0; out_channels],
            config,
            split: SubVecSplit::new(k, config.sub_vector_len),
            lsh: Vec::new(),
            lsh_seed,
            caches: Vec::new(),
            cache_refresh_every: 8,
            train_batches_since_refresh: 0,
            cached: None,
            hasher: None,
            arena: ReuseArena::default(),
            unfolded: Matrix::zeros(0, 0),
            meter: FlopMeter::new(),
            stats: ReuseStats::default(),
        };
        layer.rebuild_for_config();
        layer
    }

    /// Builds a `ReuseConv2d` taking geometry, weights and bias from an
    /// existing dense convolution (used to apply reuse to a trained model,
    /// as the inference experiments of §VI-A/§VI-B1 do).
    pub fn from_dense(conv: &adr_nn::conv::Conv2d, config: ReuseConfig, rng: &mut AdrRng) -> Self {
        let mut layer = Self::new(
            format!("{}-reuse", conv.name()),
            *conv.geom(),
            conv.out_channels(),
            config,
            rng,
        );
        layer.weight = conv.weight().clone();
        layer.bias = conv.bias().to_vec();
        layer
    }

    fn rebuild_for_config(&mut self) {
        let k = self.geom.k();
        self.split = SubVecSplit::new(k, self.config.sub_vector_len);
        self.lsh = self
            .split
            .ranges()
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                // Derive a family deterministically from (seed, L, H, i).
                let mix = self
                    .lsh_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((self.config.sub_vector_len as u64) << 32)
                    .wrapping_add((self.config.num_hashes as u64) << 16)
                    .wrapping_add(i as u64);
                LshTable::new(b - a, self.config.num_hashes, &mut AdrRng::seeded(mix))
            })
            .collect();
        self.caches = if self.config.cluster_reuse {
            (0..self.split.num_sub_vectors()).map(|_| ReuseCache::new(self.out_channels)).collect()
        } else {
            Vec::new()
        };
        self.hasher = Some(PackedHasher::new(&self.split, &self.lsh));
        self.cached = None;
    }

    /// The active reuse configuration.
    pub fn config(&self) -> ReuseConfig {
        self.config
    }

    /// Retunes `{L, H, CR}`. The sub-vector length is clamped to `K`. All
    /// LSH families are rebuilt and the cluster-reuse caches are cleared
    /// (old signatures are meaningless under a new family).
    pub fn set_config(&mut self, mut config: ReuseConfig) {
        config.sub_vector_len = config.sub_vector_len.min(self.geom.k());
        if config == self.config {
            return;
        }
        self.config = config;
        self.rebuild_for_config();
    }

    /// Convenience wrapper over [`ReuseConv2d::set_config`].
    pub fn set_reuse_params(&mut self, l: usize, h: usize, cluster_reuse: bool) {
        self.set_config(ReuseConfig::new(l, h, cluster_reuse));
    }

    /// Rebuilds the LSH families and caches from the current config — the
    /// repair step after [`ReuseConv2d::inject_degenerate_clustering`].
    /// Unlike [`ReuseConv2d::set_config`] (which early-returns when the
    /// config is unchanged) this always re-derives the families, so it also
    /// clears injected corruption under an identical `{L, H, CR}`.
    pub fn rebuild_families(&mut self) {
        self.rebuild_for_config();
    }

    /// Deterministically corrupts the LSH families to one of the two
    /// clustering failure extremes, leaving the configured `{L, H, CR}`
    /// untouched — exactly what a memory fault or a buggy family rebuild
    /// would look like to the rest of the system. Guardrails detect both:
    /// all-singleton via `avg_clusters > 2^H` (impossible under the
    /// configured family) and one-giant via a collapsed remaining ratio.
    /// Repair with [`ReuseConv2d::rebuild_families`].
    pub fn inject_degenerate_clustering(&mut self, mode: DegenerateClustering) {
        self.lsh = self
            .split
            .ranges()
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| match mode {
                DegenerateClustering::AllSingleton => {
                    // Maximally fine families: 64 hashes make collisions
                    // between distinct rows vanishingly unlikely.
                    let mix =
                        self.lsh_seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(i as u64);
                    LshTable::new(b - a, 64, &mut AdrRng::seeded(mix))
                }
                DegenerateClustering::OneGiantCluster => {
                    LshTable::constant(b - a, self.config.num_hashes)
                }
            })
            .collect();
        // Old signatures are meaningless under the corrupted families, and
        // the packed hasher must track them — forgetting it here would keep
        // hashing with the healthy families, hiding the injected fault.
        self.hasher = Some(PackedHasher::new(&self.split, &self.lsh));
        self.caches = if self.config.cluster_reuse {
            (0..self.split.num_sub_vectors()).map(|_| ReuseCache::new(self.out_channels)).collect()
        } else {
            Vec::new()
        };
        self.cached = None;
    }

    /// Drops to the exact im2col GEMM path: one full-width sub-vector and
    /// maximally fine hashing, so every distinct row is its own cluster and
    /// each centroid *is* its row — the guardrails' last resort when
    /// tightening runs out of reuse stages.
    pub fn exact_fallback(&mut self) {
        self.set_config(ReuseConfig::new(self.geom.k(), 64, false));
        // An injected-fault rollback may land here with the config already
        // exact; force clean families either way.
        self.rebuild_for_config();
    }

    /// The layer's convolution geometry.
    pub fn geom(&self) -> &ConvGeom {
        &self.geom
    }

    /// Number of weight filters `M`.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Observability snapshot from the latest forward pass.
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// The paper's modelled relative training-step cost (Eqs. 5/6/12/20)
    /// evaluated with the *measured* remaining ratio and reuse rate of the
    /// latest forward pass. `1.0` means "as expensive as dense"; returns
    /// `None` before any forward pass has produced statistics.
    pub fn modelled_step_cost(&self) -> Option<f64> {
        if self.stats.rows == 0 {
            return None;
        }
        let p = CostParams {
            m: self.out_channels,
            l: self.split.l(),
            h: self.config.num_hashes,
            rc: self.stats.avg_remaining_ratio,
            reuse_rate: self.mean_reuse_rate(),
        };
        Some(training_step_cost(&p, self.config.cluster_reuse))
    }

    /// Pushes the latest forward pass's reuse statistics into the installed
    /// telemetry sink (DESIGN.md §11): per-layer `r_c`, cluster counts, the
    /// across-batch hit rate, and per-phase FLOP attribution whose sum is
    /// exactly `ReuseStats::total_forward_flops()`. No-op without a sink.
    fn record_telemetry(&self, baseline: u64) {
        if !adr_obs::is_active() {
            return;
        }
        let layer = self.name.as_str();
        let labels = [("layer", layer)];
        adr_obs::counter_add("adr_reuse_batches", &labels, 1);
        adr_obs::gauge_set("adr_reuse_rc", &labels, self.stats.avg_remaining_ratio);
        adr_obs::histogram_record(
            "adr_reuse_rc_per_batch",
            &labels,
            self.stats.avg_remaining_ratio,
        );
        adr_obs::gauge_set("adr_reuse_clusters_avg", &labels, self.stats.avg_clusters);
        adr_obs::gauge_set("adr_reuse_hit_rate", &labels, self.stats.reuse_rate);
        adr_obs::histogram_record("adr_reuse_hit_rate_per_batch", &labels, self.stats.reuse_rate);
        // Per-phase FLOP attribution: im2col and cluster grouping perform no
        // multiply–adds, so hash + centroid-GEMM + scatter cover the total.
        let phases = [
            ("hash", self.stats.hash_flops),
            ("centroid_gemm", self.stats.gemm_flops),
            ("scatter", self.stats.add_flops),
        ];
        for (phase, flops) in phases {
            adr_obs::counter_add(
                "adr_reuse_phase_flops",
                &[("layer", layer), ("phase", phase)],
                flops,
            );
        }
        adr_obs::counter_add("adr_reuse_flops_actual", &labels, self.stats.total_forward_flops());
        adr_obs::counter_add("adr_reuse_flops_exact", &labels, baseline);
    }

    /// Mean across-batch reuse rate `R`; zero when CR = 0.
    ///
    /// Uses the in-flight batch's rate when available (the latest forward
    /// pass), falling back to the mean over completed batches.
    pub fn mean_reuse_rate(&self) -> f64 {
        if self.caches.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .caches
            .iter()
            .map(|c| c.current_batch_rate().unwrap_or_else(|| c.mean_reuse_rate()))
            .sum();
        sum / self.caches.len() as f64
    }

    /// Sets how many *training* batches may reuse cached outputs before the
    /// caches are invalidated (staleness bound). Has no effect on inference.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn set_cache_refresh_every(&mut self, every: usize) {
        assert!(every > 0, "refresh interval must be positive");
        self.cache_refresh_every = every;
    }

    /// Per-batch reuse rates averaged across sub-matrix caches: entry `b` is
    /// the mean hit fraction of completed batch `b`. Empty when CR = 0.
    pub fn reuse_rate_history(&self) -> Vec<f64> {
        if self.caches.is_empty() {
            return Vec::new();
        }
        let len = self.caches.iter().map(|c| c.history().len()).min().unwrap_or(0);
        (0..len)
            .map(|b| {
                self.caches.iter().map(|c| c.history()[b]).sum::<f64>() / self.caches.len() as f64
            })
            .collect()
    }

    /// Borrows the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutably borrows the weight matrix (tests / model surgery).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Borrows the bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutably borrows the bias (model surgery).
    pub fn bias_mut(&mut self) -> &mut Vec<f32> {
        &mut self.bias
    }
}

impl Layer for ReuseConv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        assert_eq!(
            input,
            (self.geom.in_h, self.geom.in_w, self.geom.in_c),
            "reuse conv {}: input shape mismatch",
            self.name
        );
        (self.geom.out_h(), self.geom.out_w(), self.out_channels)
    }

    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        // Telemetry: attribute the phase spans below (and those inside
        // `reuse_forward`) to this layer. No-op when no sink is installed.
        adr_obs::enter_layer(&self.name);
        {
            let _span = adr_obs::span_phase(adr_obs::Phase::Im2col);
            im2col_into(input, &self.geom, &mut self.unfolded);
        }
        let (n, k) = self.unfolded.shape();
        let caches = if self.config.cluster_reuse {
            if mode == Mode::Train {
                self.train_batches_since_refresh += 1;
                if self.train_batches_since_refresh >= self.cache_refresh_every {
                    self.train_batches_since_refresh = 0;
                    for c in &mut self.caches {
                        c.invalidate_outputs();
                    }
                }
            }
            for c in &mut self.caches {
                c.begin_batch();
            }
            Some(self.caches.as_mut_slice())
        } else {
            None
        };
        let rows_per_image = match self.config.scope {
            ClusterScope::SingleInput => Some(self.geom.rows_per_image()),
            ClusterScope::SingleBatch => None,
        };
        let outcome = reuse_forward_with(
            &self.unfolded,
            &self.weight,
            &self.bias,
            &self.split,
            &self.lsh,
            self.hasher.as_ref().expect("families are built before any forward"),
            caches,
            rows_per_image,
            &mut self.arena,
        );
        self.stats = outcome.stats;
        let baseline = (n * k * self.out_channels) as u64;
        self.meter.add_forward(self.stats.total_forward_flops(), baseline);
        self.record_telemetry(baseline);
        self.cached = (mode == Mode::Train).then_some(CachedForward {
            tables: outcome.tables,
            centroids: outcome.centroids,
            batch: input.batch(),
        });
        Tensor4::from_vec(
            input.batch(),
            self.geom.out_h(),
            self.geom.out_w(),
            self.out_channels,
            outcome.output.into_vec(),
        )
        .expect("output shape arithmetic is consistent")
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let cached =
            self.cached.take().expect("backward called without a preceding training forward");
        let n = self.geom.rows_for_batch(cached.batch);
        let delta_y = Matrix::from_vec(n, self.out_channels, grad_out.as_slice().to_vec())
            .expect("grad_out shape mismatch");
        let outcome =
            reuse_backward(&cached.tables, &cached.centroids, &self.split, &self.weight, &delta_y);
        let baseline = (2 * n * self.geom.k() * self.out_channels) as u64;
        self.meter.add_backward(outcome.flops, baseline);
        self.weight_grad = outcome.weight_grad;
        self.bias_grad = outcome.bias_grad;
        col2im(&outcome.delta_x_unf, &self.geom, cached.batch)
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut {
                data: self.weight.as_mut_slice(),
                grad: self.weight_grad.as_mut_slice(),
                velocity: self.weight_vel.as_mut_slice(),
            },
            ParamRefMut {
                data: &mut self.bias,
                grad: &mut self.bias_grad,
                velocity: &mut self.bias_vel,
            },
        ]
    }

    fn flops(&self) -> FlopReport {
        self.meter.actual()
    }

    fn baseline_flops(&self) -> FlopReport {
        self.meter.baseline()
    }

    fn reset_flops(&mut self) {
        self.meter.reset();
    }

    fn restore_flops(&mut self, actual: FlopReport, baseline: FlopReport) {
        self.meter.restore(actual, baseline);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::conv::Conv2d;

    fn geom() -> ConvGeom {
        ConvGeom::new(6, 6, 2, 3, 3, 1, 0).unwrap()
    }

    fn reuse_layer(l: usize, h: usize, cr: bool, seed: u64) -> ReuseConv2d {
        ReuseConv2d::new("rc", geom(), 4, ReuseConfig::new(l, h, cr), &mut AdrRng::seeded(seed))
    }

    #[test]
    fn forward_shape_matches_dense_conv() {
        let mut layer = reuse_layer(18, 12, false, 1);
        let x = Tensor4::zeros(2, 6, 6, 2);
        let y = layer.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (2, 4, 4, 4));
    }

    #[test]
    fn matches_dense_conv_when_clusters_are_fine() {
        // Same weights as a dense conv; many hashes → near-singleton
        // clusters → output approximates the dense conv closely.
        let mut rng = AdrRng::seeded(2);
        let dense = Conv2d::new("c", geom(), 4, &mut rng);
        let mut layer = ReuseConv2d::from_dense(&dense, ReuseConfig::new(18, 40, false), &mut rng);
        let mut dense = {
            let mut rng2 = AdrRng::seeded(2);
            Conv2d::new("c", geom(), 4, &mut rng2)
        };
        let x = Tensor4::from_fn(2, 6, 6, 2, |n, y, xx, c| {
            ((n * 53 + y * 17 + xx * 7 + c * 3) % 19) as f32 * 0.1 - 0.9
        });
        let y_reuse = layer.forward(&x, Mode::Eval);
        let y_dense = dense.forward(&x, Mode::Eval);
        let max_diff = y_reuse
            .as_slice()
            .iter()
            .zip(y_dense.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 0.15, "max diff {max_diff}");
    }

    #[test]
    fn saves_flops_against_baseline_on_redundant_input() {
        // Profitability needs H << M(1 - r_c) (§III-B), so use a wide layer.
        let mut layer = ReuseConv2d::new(
            "rc",
            geom(),
            32,
            ReuseConfig::new(9, 4, false),
            &mut AdrRng::seeded(3),
        );
        // Constant image: massive redundancy between receptive fields.
        let x = Tensor4::from_fn(2, 6, 6, 2, |_, _, _, c| c as f32 + 1.0);
        layer.forward(&x, Mode::Eval);
        assert!(layer.stats().avg_remaining_ratio < 0.3);
        assert!(layer.flops().forward < layer.baseline_flops().forward);
    }

    #[test]
    fn train_forward_then_backward_produces_all_gradients() {
        let mut layer = reuse_layer(6, 10, false, 4);
        let x = Tensor4::from_fn(1, 6, 6, 2, |_, y, xx, c| ((y + xx + c) % 5) as f32 * 0.3);
        layer.forward(&x, Mode::Train);
        let g = Tensor4::from_vec(1, 4, 4, 4, vec![1.0; 64]).unwrap();
        let dx = layer.backward(&g);
        assert_eq!(dx.shape(), (1, 6, 6, 2));
        let wnorm: f32 = layer.weight_grad.as_slice().iter().map(|v| v * v).sum();
        assert!(wnorm > 0.0);
        assert!(layer.bias_grad.iter().all(|&b| (b - 16.0).abs() < 1e-4));
    }

    #[test]
    fn backward_gradient_approximates_dense_gradient() {
        // With near-singleton clusters, the reuse gradients approximate the
        // dense conv gradients.
        let mut rng = AdrRng::seeded(5);
        let dense_proto = Conv2d::new("c", geom(), 4, &mut rng);
        let mut layer =
            ReuseConv2d::from_dense(&dense_proto, ReuseConfig::new(18, 45, false), &mut rng);
        let mut dense = {
            let mut rng2 = AdrRng::seeded(5);
            Conv2d::new("c", geom(), 4, &mut rng2)
        };
        // Gaussian input: receptive-field rows are distinct, so with H = 45
        // clusters are singletons and reuse degenerates to the exact conv.
        let mut xrng = AdrRng::seeded(55);
        let x = Tensor4::from_fn(1, 6, 6, 2, |_, _, _, _| xrng.gauss());
        layer.forward(&x, Mode::Train);
        dense.forward(&x, Mode::Train);
        let g = Tensor4::from_fn(1, 4, 4, 4, |_, y, xx, c| ((y + xx + c) % 3) as f32 - 1.0);
        let dx_reuse = layer.backward(&g);
        let dx_dense = dense.backward(&g);
        let diff = dx_reuse
            .as_slice()
            .iter()
            .zip(dx_dense.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 0.5, "max dx diff {diff}");
    }

    #[test]
    fn set_config_clamps_l_and_clears_cache_state() {
        let mut layer = reuse_layer(6, 8, true, 6);
        let x = Tensor4::from_fn(1, 6, 6, 2, |_, _, _, _| 1.0);
        layer.forward(&x, Mode::Eval);
        assert!(!layer.caches.is_empty());
        layer.set_reuse_params(10_000, 12, true);
        assert_eq!(layer.config().sub_vector_len, 18); // clamped to K
        assert!(layer.caches.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn cluster_reuse_reduces_gemm_work_on_repeated_batches() {
        let mut layer = reuse_layer(9, 8, true, 7);
        let x = Tensor4::from_fn(2, 6, 6, 2, |_, y, xx, c| ((y * 2 + xx + c) % 4) as f32);
        layer.forward(&x, Mode::Eval);
        let first_gemm = layer.stats().gemm_flops;
        layer.forward(&x, Mode::Eval);
        let second_gemm = layer.stats().gemm_flops;
        assert_eq!(second_gemm, 0, "second identical batch must fully reuse (first {first_gemm})");
        assert!(layer.mean_reuse_rate() > 0.9);
    }

    #[test]
    fn single_input_scope_never_clusters_across_images() {
        use crate::ClusterScope;
        // Two identical images: batch scope merges their clusters, input
        // scope keeps them separate, so input scope has ~2x the clusters.
        let mut rng = AdrRng::seeded(21);
        let one = Tensor4::from_fn(1, 6, 6, 2, |_, _, _, _| rng.gauss());
        let mut two = Tensor4::zeros(2, 6, 6, 2);
        let per = one.len();
        two.as_mut_slice()[..per].copy_from_slice(one.as_slice());
        two.as_mut_slice()[per..].copy_from_slice(one.as_slice());

        let mut batch_scope = reuse_layer(9, 14, false, 22);
        batch_scope.forward(&two, Mode::Eval);
        let batch_clusters = batch_scope.stats().avg_clusters;

        let mut input_scope = ReuseConv2d::new(
            "rc",
            geom(),
            4,
            ReuseConfig::new(9, 14, false).with_scope(ClusterScope::SingleInput),
            &mut AdrRng::seeded(22),
        );
        input_scope.forward(&two, Mode::Eval);
        let input_clusters = input_scope.stats().avg_clusters;
        // Duplicated images: batch scope dedups across them, input scope
        // cannot, so it keeps twice the clusters.
        assert!(
            input_clusters > batch_clusters * 1.5,
            "input {input_clusters} vs batch {batch_clusters}"
        );
    }

    #[test]
    fn single_input_scope_trains_and_backprops() {
        use crate::ClusterScope;
        let mut layer = ReuseConv2d::new(
            "rc",
            geom(),
            4,
            ReuseConfig::new(6, 10, false).with_scope(ClusterScope::SingleInput),
            &mut AdrRng::seeded(23),
        );
        let mut rng = AdrRng::seeded(24);
        let x = Tensor4::from_fn(3, 6, 6, 2, |_, _, _, _| rng.gauss());
        layer.forward(&x, Mode::Train);
        let dx = layer.backward(&Tensor4::zeros(3, 4, 4, 4));
        assert_eq!(dx.shape(), (3, 6, 6, 2));
    }

    #[test]
    #[should_panic(expected = "conflicts with single-input scope")]
    fn cluster_reuse_with_single_input_scope_panics() {
        use crate::ClusterScope;
        let _ = ReuseConfig::new(5, 8, true).with_scope(ClusterScope::SingleInput);
    }

    #[test]
    fn modelled_step_cost_tracks_measured_savings() {
        let mut layer = reuse_layer(9, 6, false, 30);
        assert!(layer.modelled_step_cost().is_none(), "no stats before forward");
        // Redundant input: model must predict a sub-dense cost.
        let x = Tensor4::from_fn(2, 6, 6, 2, |_, _, _, c| c as f32 - 0.5);
        layer.forward(&x, Mode::Train);
        layer.backward(&Tensor4::zeros(2, 4, 4, 4));
        let model = layer.modelled_step_cost().expect("stats available");
        assert!(model < 1.0, "modelled cost {model}");
        let measured = layer.flops().total() as f64 / layer.baseline_flops().total() as f64;
        // The model counts the same terms the meter counts; allow slack for
        // the H/M hashing term granularity.
        assert!((model - measured).abs() < 0.35, "model {model} vs measured {measured}");
    }

    #[test]
    fn injected_one_giant_cluster_collapses_remaining_ratio() {
        let mut layer = reuse_layer(9, 8, false, 40);
        let mut rng = AdrRng::seeded(41);
        let x = Tensor4::from_fn(2, 6, 6, 2, |_, _, _, _| rng.gauss());
        layer.forward(&x, Mode::Eval);
        let healthy_rc = layer.stats().avg_remaining_ratio;
        layer.inject_degenerate_clustering(DegenerateClustering::OneGiantCluster);
        layer.forward(&x, Mode::Eval);
        let broken = layer.stats();
        assert!((broken.avg_clusters - 1.0).abs() < 1e-9, "clusters {}", broken.avg_clusters);
        assert!(broken.avg_remaining_ratio < 0.05, "rc {}", broken.avg_remaining_ratio);
        // Repair restores the exact healthy clustering (same derived seed).
        layer.rebuild_families();
        layer.forward(&x, Mode::Eval);
        assert_eq!(layer.stats().avg_remaining_ratio.to_bits(), healthy_rc.to_bits());
    }

    #[test]
    fn injected_all_singleton_exceeds_the_configured_family_capacity() {
        // H = 4 caps legitimate clustering at 2^4 = 16 clusters; the
        // corrupted family blows past that — the guardrail's signal.
        let mut layer = reuse_layer(9, 4, false, 42);
        let mut rng = AdrRng::seeded(43);
        let x = Tensor4::from_fn(4, 6, 6, 2, |_, _, _, _| rng.gauss());
        layer.forward(&x, Mode::Eval);
        assert!(layer.stats().avg_clusters <= 16.0);
        layer.inject_degenerate_clustering(DegenerateClustering::AllSingleton);
        layer.forward(&x, Mode::Eval);
        let stats = layer.stats();
        assert!(stats.avg_clusters > 16.0, "clusters {}", stats.avg_clusters);
    }

    #[test]
    fn exact_fallback_matches_dense_conv_bitwise_per_output() {
        let mut rng = AdrRng::seeded(44);
        let dense_proto = Conv2d::new("c", geom(), 4, &mut rng);
        let mut layer =
            ReuseConv2d::from_dense(&dense_proto, ReuseConfig::new(6, 4, false), &mut rng);
        let mut dense = Conv2d::new("c", geom(), 4, &mut AdrRng::seeded(44));
        let mut xrng = AdrRng::seeded(45);
        let x = Tensor4::from_fn(2, 6, 6, 2, |_, _, _, _| xrng.gauss());
        layer.exact_fallback();
        assert_eq!(layer.config().sub_vector_len, 18);
        assert_eq!(layer.config().num_hashes, 64);
        let y_reuse = layer.forward(&x, Mode::Eval);
        let y_dense = dense.forward(&x, Mode::Eval);
        // Gaussian rows are distinct, so 64-bit signatures are singletons,
        // each centroid is its own row, and the GEMM is the dense GEMM.
        let max_diff = y_reuse
            .as_slice()
            .iter()
            .zip(y_dense.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-4, "max diff {max_diff}");
        assert!((layer.stats().avg_remaining_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_is_idempotent() {
        let mut layer = reuse_layer(9, 8, false, 8);
        let cfg = layer.config();
        layer.set_config(cfg);
        assert_eq!(layer.config(), cfg);
    }

    #[test]
    fn as_any_allows_downcast() {
        let mut layer: Box<dyn Layer> = Box::new(reuse_layer(9, 8, false, 9));
        let any = layer.as_any_mut().expect("reuse layer exposes Any");
        assert!(any.downcast_mut::<ReuseConv2d>().is_some());
    }

    #[test]
    fn sgd_training_step_applies_updates() {
        use adr_nn::Sgd;
        let mut layer = reuse_layer(6, 12, false, 10);
        let before = layer.weight().as_slice().to_vec();
        let x = Tensor4::from_fn(1, 6, 6, 2, |_, y, xx, _| (y * 6 + xx) as f32 * 0.05);
        layer.forward(&x, Mode::Train);
        layer.backward(&Tensor4::from_vec(1, 4, 4, 4, vec![0.5; 64]).unwrap());
        let mut sgd = Sgd::constant(0.1);
        let mut params = layer.params_mut();
        sgd.apply(&mut params);
        let after = layer.weight().as_slice();
        assert!(before.iter().zip(after).any(|(a, b)| (a - b).abs() > 1e-9));
    }
}
