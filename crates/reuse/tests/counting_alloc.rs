//! Runtime cross-check of the static hot-path allocation budget.
//!
//! `adr-check hotpath` proves *which* allocation sites are reachable from
//! the forward-pass roots; this harness proves *how often* the steady
//! state hits them. A counting `#[global_allocator]` wraps the system
//! allocator, threads are pinned to one (so no fan-out allocations), and
//! no metrics sink is attached (so spans take the allocation-free
//! disabled path). After warmup, every additional step of the exact and
//! reuse forward paths must perform exactly the per-step allocation
//! count pinned in `adr-check.budget`'s `[runtime]` section — a new
//! allocation in the inner loop fails here even if a reviewer waves it
//! through the static table.
//!
//! The pins describe the *default* build: the `checked` sanitizer layer
//! deliberately trades allocations for diagnostics, so this harness is
//! compiled out under that feature.
#![cfg(not(feature = "checked"))]
//!
//! One `#[test]` per binary: the counter is process-global, so parallel
//! tests would double-count each other's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adr_clustering::lsh::LshTable;
use adr_clustering::reuse_cache::ReuseCache;
use adr_reuse::forward::{reuse_forward_with, ReuseArena};
use adr_reuse::hashpack::PackedHasher;
use adr_reuse::subvec::SubVecSplit;
use adr_tensor::im2col::{im2col, ConvGeom};
use adr_tensor::matrix::Matrix;
use adr_tensor::par::{matmul_par, set_thread_override};
use adr_tensor::rng::AdrRng;
use adr_tensor::tensor4::Tensor4;

/// Counts allocation *events* (not bytes): `alloc`, `alloc_zeroed`, and
/// `realloc` each bump the counter once. Deallocation is free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is
// a relaxed atomic with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Reads one `[runtime]` pin from the workspace `adr-check.budget`.
/// Deliberately tiny and duplicated per test binary — the tests must not
/// depend on `adr-check` (a dev-dependency cycle through the tool that
/// audits them).
fn runtime_budget(key: &str) -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../adr-check.budget");
    let text = std::fs::read_to_string(path).expect("workspace adr-check.budget exists");
    let mut in_runtime = false;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_runtime = line == "[runtime]";
            continue;
        }
        if !in_runtime {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == key {
                return v.trim().parse().expect("budget count parses");
            }
        }
    }
    panic!("adr-check.budget [runtime] is missing `{key}`");
}

#[test]
fn steady_state_allocation_counts_match_the_budget() {
    set_thread_override(Some(1));

    // Exact path: unfold + GEMM, the baseline the reuse path replaces.
    let geom = ConvGeom::new(8, 8, 2, 3, 3, 1, 0).expect("valid geometry");
    let input = Tensor4::from_fn(2, 8, 8, 2, |n, y, x, c| {
        (n * 311 + y * 31 + x * 7 + c) as f32 * 0.01 - 0.5
    });
    let mut rng = AdrRng::seeded(42);
    let weight = Matrix::from_fn(geom.k(), 4, |_, _| rng.gauss());
    let bias = [0.1f32, -0.2, 0.3, 0.0];

    let exact_step = || {
        let unf = im2col(&input, &geom);
        let mut y = matmul_par(&unf, &weight);
        y.add_row_bias(&bias);
        y
    };
    for _ in 0..2 {
        let _ = exact_step(); // warmup: allocator metadata, lazy init
    }
    let expected = runtime_budget("exact_forward_step");
    for step in 0..3 {
        let before = allocs();
        let y = exact_step();
        let after = allocs();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(
            after - before,
            expected,
            "exact forward step {step}: allocation count drifted from \
             adr-check.budget `exact_forward_step`"
        );
    }

    // Reuse path: same unfolded input every batch, so after the first
    // pass every signature hits the cache and the count is steady. Uses the
    // steady-state entry point the layer uses — a long-lived hasher and
    // arena — so the pin measures the amortized path, not the compat
    // wrapper that rebuilds both per call.
    let x_unf = im2col(&input, &geom);
    let split = SubVecSplit::new(geom.k(), 9);
    let num_subs = split.num_sub_vectors();
    let lsh: Vec<LshTable> =
        (0..num_subs).map(|i| LshTable::new(split.width(i), 6, &mut rng)).collect();
    let hasher = PackedHasher::new(&split, &lsh);
    let mut arena = ReuseArena::default();
    let mut caches: Vec<ReuseCache> = (0..num_subs).map(|_| ReuseCache::new(4)).collect();

    let mut reuse_step = |caches: &mut Vec<ReuseCache>| {
        for c in caches.iter_mut() {
            c.begin_batch();
        }
        reuse_forward_with(
            &x_unf,
            &weight,
            &bias,
            &split,
            &lsh,
            &hasher,
            Some(caches),
            None,
            &mut arena,
        )
    };
    for _ in 0..2 {
        let _ = reuse_step(&mut caches); // warmup: fills cache and arena
    }
    let expected = runtime_budget("reuse_forward_step");
    for step in 0..3 {
        let before = allocs();
        let out = reuse_step(&mut caches);
        let after = allocs();
        assert_eq!(out.stats.gemm_flops, 0, "steady state must be all cache hits");
        assert_eq!(
            after - before,
            expected,
            "reuse forward step {step}: allocation count drifted from \
             adr-check.budget `reuse_forward_step`"
        );
    }
}
