//! Concurrency tests for the packed-hashing fan-out, curated for
//! `cargo miri test`: tiny inputs, with the parallel path forced through
//! [`adr_tensor::par::set_thread_override`] because no interpretable
//! problem size reaches the compute crossover under Miri.
//!
//! Signatures are `u64`s produced by an identical per-row accumulation in
//! both paths, so serial and forced-parallel results must be *equal*, not
//! merely close.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adr_clustering::lsh::LshTable;
use adr_reuse::hashpack::PackedHasher;
use adr_reuse::subvec::SubVecSplit;
use adr_tensor::matrix::Matrix;
use adr_tensor::par::set_thread_override;
use adr_tensor::rng::AdrRng;
use std::sync::Mutex;

/// The override is process-global; serialise the tests that flip it.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn families(split: &SubVecSplit, h: usize, seed: u64) -> Vec<LshTable> {
    let mut rng = AdrRng::seeded(seed);
    split.ranges().iter().map(|&(a, b)| LshTable::new(b - a, h, &mut rng)).collect()
}

#[test]
fn hash_all_forced_two_threads_equals_serial() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = AdrRng::seeded(11);
    let x = Matrix::from_fn(9, 13, |_, _| rng.gauss());
    let split = SubVecSplit::new(13, 5); // widths 5,5,3
    let packed = PackedHasher::new(&split, &families(&split, 7, 12));
    set_thread_override(None);
    let serial = packed.hash_all(&x);
    set_thread_override(Some(2));
    let forced = packed.hash_all(&x);
    set_thread_override(None);
    assert_eq!(serial, forced);
}

#[test]
fn hash_all_thread_count_beyond_rows_equals_serial() {
    // More workers than rows: the row-chunk splitter must cope with empty
    // tails instead of slicing past the signature buffer.
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = AdrRng::seeded(21);
    let x = Matrix::from_fn(3, 8, |_, _| rng.gauss());
    let split = SubVecSplit::new(8, 4);
    let packed = PackedHasher::new(&split, &families(&split, 6, 22));
    set_thread_override(None);
    let serial = packed.hash_all(&x);
    set_thread_override(Some(16));
    let forced = packed.hash_all(&x);
    set_thread_override(None);
    assert_eq!(serial, forced);
}

/// Under Miri the aliasing checks on the `split_at_mut` hand-off are the
/// point; sweep a few worker counts to probe the chunk arithmetic.
#[cfg(miri)]
mod miri_only {
    use super::*;

    #[test]
    fn hash_all_is_race_free_at_every_worker_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut rng = AdrRng::seeded(31);
        let x = Matrix::from_fn(7, 10, |_, _| rng.gauss());
        let split = SubVecSplit::new(10, 3); // widths 3,3,3,1
        let packed = PackedHasher::new(&split, &families(&split, 9, 32));
        set_thread_override(None);
        let reference = packed.hash_all(&x);
        for workers in [2usize, 3, 7] {
            set_thread_override(Some(workers));
            assert_eq!(packed.hash_all(&x), reference, "{workers} workers");
        }
        set_thread_override(None);
    }
}
