//! Concurrency tests for the packed-hashing fan-out, curated for
//! `cargo miri test`: tiny inputs, with the parallel path forced through
//! [`adr_tensor::par::set_thread_override`] because no interpretable
//! problem size reaches the compute crossover under Miri.
//!
//! Signatures are `u64`s produced by an identical per-row accumulation in
//! both paths, so serial and forced-parallel results must be *equal*, not
//! merely close.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adr_clustering::lsh::LshTable;
use adr_reuse::forward::{reuse_forward, reuse_forward_with, ReuseArena};
use adr_reuse::hashpack::PackedHasher;
use adr_reuse::subvec::SubVecSplit;
use adr_tensor::matrix::Matrix;
use adr_tensor::par::set_thread_override;
use adr_tensor::rng::AdrRng;
use std::sync::Mutex;

/// The override is process-global; serialise the tests that flip it.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Drops the persistent worker pool: under Miri leaked threads at process
/// exit are an error, so every test shuts the pool down before releasing
/// the override lock.
fn shutdown() {
    adr_tensor::kernels::pool::shutdown_pool();
}

fn families(split: &SubVecSplit, h: usize, seed: u64) -> Vec<LshTable> {
    let mut rng = AdrRng::seeded(seed);
    split.ranges().iter().map(|&(a, b)| LshTable::new(b - a, h, &mut rng)).collect()
}

#[test]
fn hash_all_forced_two_threads_equals_serial() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = AdrRng::seeded(11);
    let x = Matrix::from_fn(9, 13, |_, _| rng.gauss());
    let split = SubVecSplit::new(13, 5); // widths 5,5,3
    let packed = PackedHasher::new(&split, &families(&split, 7, 12));
    set_thread_override(None);
    let serial = packed.hash_all(&x);
    set_thread_override(Some(2));
    let forced = packed.hash_all(&x);
    set_thread_override(None);
    shutdown();
    assert_eq!(serial, forced);
}

#[test]
fn hash_all_thread_count_beyond_rows_equals_serial() {
    // More workers than rows: the row-chunk splitter must cope with empty
    // tails instead of slicing past the signature buffer.
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = AdrRng::seeded(21);
    let x = Matrix::from_fn(3, 8, |_, _| rng.gauss());
    let split = SubVecSplit::new(8, 4);
    let packed = PackedHasher::new(&split, &families(&split, 6, 22));
    set_thread_override(None);
    let serial = packed.hash_all(&x);
    set_thread_override(Some(16));
    let forced = packed.hash_all(&x);
    set_thread_override(None);
    shutdown();
    assert_eq!(serial, forced);
}

#[test]
fn arena_forward_is_bitwise_equal_to_the_rebuilding_wrapper() {
    // The arena entry point must be a pure performance change: a dirty
    // arena reused across calls (and a forced-parallel pool underneath)
    // produces bitwise the output of the rebuild-everything wrapper.
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = AdrRng::seeded(41);
    let x = Matrix::from_fn(10, 12, |_, _| rng.gauss());
    let w = Matrix::from_fn(12, 4, |_, _| rng.gauss() * 0.2);
    let bias = [0.05f32, -0.1, 0.0, 0.2];
    let split = SubVecSplit::new(12, 5); // widths 5,5,2
    let lsh = families(&split, 8, 42);
    set_thread_override(None);
    let wrapper = reuse_forward(&x, &w, &bias, &split, &lsh, None, None);
    let hasher = PackedHasher::new(&split, &lsh);
    let mut arena = ReuseArena::default();
    set_thread_override(Some(2));
    for round in 0..2 {
        let with_arena =
            reuse_forward_with(&x, &w, &bias, &split, &lsh, &hasher, None, None, &mut arena);
        assert_eq!(with_arena.output.as_slice(), wrapper.output.as_slice(), "round {round}");
        for (i, (a, b)) in with_arena.centroids.iter().zip(&wrapper.centroids).enumerate() {
            assert_eq!(a.as_slice(), b.as_slice(), "round {round} sub {i} centroids");
        }
    }
    set_thread_override(None);
    shutdown();
}

/// Under Miri the aliasing checks on the `split_at_mut` hand-off are the
/// point; sweep a few worker counts to probe the chunk arithmetic.
#[cfg(miri)]
mod miri_only {
    use super::*;

    #[test]
    fn hash_all_is_race_free_at_every_worker_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut rng = AdrRng::seeded(31);
        let x = Matrix::from_fn(7, 10, |_, _| rng.gauss());
        let split = SubVecSplit::new(10, 3); // widths 3,3,3,1
        let packed = PackedHasher::new(&split, &families(&split, 9, 32));
        set_thread_override(None);
        let reference = packed.hash_all(&x);
        for workers in [2usize, 3, 7] {
            set_thread_override(Some(workers));
            assert_eq!(packed.hash_all(&x), reference, "{workers} workers");
        }
        set_thread_override(None);
        shutdown();
    }
}
