//! The runtime adaptive controller (§V-A(b,c)).
//!
//! Strategy 2's engine: every reuse layer gets a Policy-3 candidate list;
//! training proceeds with the current stage until the loss plateaus; the
//! controller then probes later stages on a held-out batch and accepts the
//! first that passes Amendments 3.1/3.2, falling back to the relaxed
//! Amendment 3.3 ratio test. When every layer has reached its most precise
//! setting the controller reports exhaustion and training continues there.

use std::fmt;

use adr_nn::metrics::{PlateauDetector, PlateauState};
use adr_nn::{Network, Sgd};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::Tensor4;

use crate::candidates::CandidateList;
use crate::policy::{HRange, LRange};

/// Why a controller could not be built or restored.
#[derive(Debug, PartialEq, Eq)]
pub enum ControllerError {
    /// The network contains no `ReuseConv2d` layers, so there is nothing
    /// for the adaptive schedule to drive. Use the dense baseline or a
    /// fixed strategy instead.
    NoReuseLayers,
    /// A checkpointed stage index exceeds this controller's schedule —
    /// the snapshot was taken under a different configuration.
    StageOutOfRange {
        /// Stage recorded in the snapshot.
        stage: usize,
        /// Last stage this controller's schedule reaches.
        max_stage: usize,
    },
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoReuseLayers => {
                write!(f, "network contains no ReuseConv2d layers to drive adaptively")
            }
            Self::StageOutOfRange { stage, max_stage } => {
                write!(f, "snapshot stage {stage} exceeds the schedule's max stage {max_stage}")
            }
        }
    }
}

impl std::error::Error for ControllerError {}

/// The resumable portion of an [`AdaptiveController`]: the stage cursor
/// and the plateau-detector observation window. The candidate plans are
/// rebuilt deterministically from the network by
/// [`AdaptiveController::for_network`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerState {
    /// Global stage index at capture time.
    pub stage: usize,
    /// Plateau-detector window at capture time.
    pub plateau: PlateauState,
}

/// Candidate schedule for one reuse layer inside a network.
#[derive(Clone, Debug)]
pub struct LayerPlan {
    /// Index of the layer in the network's layer stack.
    pub layer_index: usize,
    /// The layer's Policy-3 schedule.
    pub candidates: CandidateList,
}

/// Outcome of an [`AdaptiveController::advance`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceOutcome {
    /// Switched to stage `stage`; training continues.
    Switched {
        /// The new global stage index.
        stage: usize,
        /// Which amendment accepted it (1 = 3.1/3.2, 3 = 3.3 fallback,
        /// 0 = forced single-step progress).
        rule: u8,
    },
    /// All layers are already at their most precise setting.
    Exhausted,
}

/// Drives per-layer `{L, H}` schedules through a training run.
#[derive(Debug)]
pub struct AdaptiveController {
    plans: Vec<LayerPlan>,
    stage: usize,
    max_stage: usize,
    plateau: PlateauDetector,
    cluster_reuse: bool,
}

impl AdaptiveController {
    /// Builds a controller for every [`ReuseConv2d`] in `net`, deriving
    /// ranges from layer geometry (Policies 1/2) and applying the initial
    /// (most aggressive) stage immediately.
    ///
    /// * `batch_size` — training batch size `Nb`, needed for `N` in Policy 2.
    /// * `max_h_values` — cap on distinct `H` candidates per layer.
    /// * `patience`/`min_delta` — plateau detection (§V-A(c)).
    /// * `warmup` — observations after each switch during which the plateau
    ///   detector stays quiet (early-phase loss is noise, not a plateau).
    /// * `cluster_reuse` — whether layers should run with `CR = 1`.
    ///
    /// # Errors
    /// Returns [`ControllerError::NoReuseLayers`] when the network has no
    /// `ReuseConv2d` layers — there is nothing to drive adaptively.
    pub fn for_network(
        net: &mut Network,
        batch_size: usize,
        max_h_values: usize,
        patience: usize,
        min_delta: f32,
        warmup: usize,
        cluster_reuse: bool,
    ) -> Result<Self, ControllerError> {
        let mut plans = Vec::new();
        let mut first_conv = true;
        for (idx, layer) in net.layers_mut().iter_mut().enumerate() {
            let Some(any) = layer.as_any_mut() else { continue };
            let Some(reuse) = any.downcast_mut::<ReuseConv2d>() else { continue };
            let geom = *reuse.geom();
            let l_range = LRange::from_geometry(geom.kernel_w, geom.in_c, first_conv);
            first_conv = false;
            let n = geom.rows_for_batch(batch_size);
            let h_range = HRange::from_rows(n.max(2), max_h_values);
            let candidates = CandidateList::build(&l_range, &h_range, reuse.out_channels());
            plans.push(LayerPlan { layer_index: idx, candidates });
        }
        let Some(longest) = plans.iter().map(|p| p.candidates.len()).max() else {
            return Err(ControllerError::NoReuseLayers);
        };
        let max_stage = longest - 1;
        let controller = Self {
            plans,
            stage: 0,
            max_stage,
            plateau: PlateauDetector::new(patience, min_delta).with_warmup(warmup),
            cluster_reuse,
        };
        controller.apply_stage(net, 0);
        Ok(controller)
    }

    /// Captures the stage cursor and plateau window for checkpointing.
    pub fn snapshot(&self) -> ControllerState {
        ControllerState { stage: self.stage, plateau: self.plateau.snapshot() }
    }

    /// Restores a snapshotted stage + plateau window and re-applies the
    /// stage's `{L, H}` to every planned layer.
    ///
    /// # Errors
    /// Returns [`ControllerError::StageOutOfRange`] (without mutating
    /// anything) when the snapshot does not fit this schedule.
    pub fn restore(
        &mut self,
        net: &mut Network,
        state: &ControllerState,
    ) -> Result<(), ControllerError> {
        if state.stage > self.max_stage {
            return Err(ControllerError::StageOutOfRange {
                stage: state.stage,
                max_stage: self.max_stage,
            });
        }
        self.stage = state.stage;
        self.plateau.restore(&state.plateau);
        self.apply_stage(net, self.stage);
        Ok(())
    }

    /// Moves one stage towards precision *without* probing — the guardrail
    /// response to a detected fault ("the current setting destabilised
    /// training; trade speed for fidelity"). Returns the new stage, or
    /// `None` when already exhausted (the caller then falls back to the
    /// exact GEMM path).
    pub fn tighten(&mut self, net: &mut Network) -> Option<usize> {
        if self.is_exhausted() {
            return None;
        }
        self.stage += 1;
        self.apply_stage(net, self.stage);
        self.plateau.reset();
        Some(self.stage)
    }

    /// Current global stage index.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Last stage index any layer can reach.
    pub fn max_stage(&self) -> usize {
        self.max_stage
    }

    /// The per-layer plans (for reporting).
    pub fn plans(&self) -> &[LayerPlan] {
        &self.plans
    }

    /// Whether every layer sits at its most precise setting.
    pub fn is_exhausted(&self) -> bool {
        self.stage >= self.max_stage
    }

    /// Feeds one training-loss observation; `true` means the loss has
    /// plateaued and [`AdaptiveController::advance`] should be called.
    pub fn observe_loss(&mut self, loss: f32) -> bool {
        self.plateau.observe(loss)
    }

    /// Applies stage `stage` (clamped per layer) to all reuse layers.
    fn apply_stage(&self, net: &mut Network, stage: usize) {
        for plan in &self.plans {
            let (l, h) = plan.candidates.get_clamped(stage);
            let layer = &mut net.layers_mut()[plan.layer_index];
            let any = layer.as_any_mut().expect("plan points at a reuse layer");
            let reuse = any.downcast_mut::<ReuseConv2d>().expect("plan points at a reuse layer");
            reuse.set_config(ReuseConfig::new(l, h, self.cluster_reuse));
        }
    }

    /// The `{L, H}` each layer is currently running (clamped stage).
    pub fn current_settings(&self) -> Vec<(usize, (usize, usize))> {
        self.plans.iter().map(|p| (p.layer_index, p.candidates.get_clamped(self.stage))).collect()
    }

    /// Runs the Amendment 3.1–3.3 switching procedure on a probe batch.
    ///
    /// `training_accuracy` selects between the two acceptance rules:
    /// below 0.5 a candidate must improve probe accuracy by ×1.5
    /// (Amendment 3.1); above, by +0.1 absolute (Amendment 3.2). If no
    /// stage passes, the first stage with ratio ≥ 1.1 is taken
    /// (Amendment 3.3); if even that fails, the controller takes a single
    /// step anyway so the schedule always progresses towards precision.
    pub fn advance(
        &mut self,
        net: &mut Network,
        probe_images: &Tensor4,
        probe_labels: &[usize],
        training_accuracy: f32,
    ) -> AdvanceOutcome {
        if self.is_exhausted() {
            return AdvanceOutcome::Exhausted;
        }
        // Accuracy with the current settings.
        self.apply_stage(net, self.stage);
        let a_cur = net.evaluate(probe_images, probe_labels).accuracy.max(1e-6);

        // Probe each later stage once, remembering accuracies.
        let first = self.stage + 1;
        let mut probe_acc = Vec::with_capacity(self.max_stage - self.stage);
        for stage in first..=self.max_stage {
            self.apply_stage(net, stage);
            probe_acc.push(net.evaluate(probe_images, probe_labels).accuracy);
        }

        // Amendments 3.1 / 3.2.
        let passes = |a_next: f32| {
            if training_accuracy < 0.5 {
                a_next / a_cur >= 1.5
            } else {
                a_next - a_cur >= 0.1
            }
        };
        let accepted = probe_acc
            .iter()
            .position(|&a| passes(a))
            .map(|off| (first + off, 1u8))
            // Amendment 3.3 fallback.
            .or_else(|| {
                probe_acc.iter().position(|&a| a / a_cur >= 1.1).map(|off| (first + off, 3u8))
            })
            // Forced single step: guarantee progress.
            .unwrap_or((first, 0u8));

        let (stage, rule) = accepted;
        self.stage = stage;
        self.apply_stage(net, stage);
        self.plateau.reset();
        AdvanceOutcome::Switched { stage, rule }
    }

    /// Turns cluster reuse on/off for every planned layer (used by
    /// Strategy 3) without touching `{L, H}`.
    pub fn set_cluster_reuse(&mut self, net: &mut Network, enabled: bool) {
        self.cluster_reuse = enabled;
        self.apply_stage(net, self.stage);
    }

    /// Convenience: one SGD step is sometimes needed inside tests to make a
    /// probe batch meaningful; exposed as a free helper for symmetry.
    pub fn train_probe_step(
        net: &mut Network,
        sgd: &mut Sgd,
        images: &Tensor4,
        labels: &[usize],
    ) -> f32 {
        net.train_batch(images, labels, sgd).loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::dense::Dense;
    use adr_nn::relu::Relu;
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;

    fn reuse_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((8, 8, 3));
        let g1 = ConvGeom::new(8, 8, 3, 3, 3, 1, 0).unwrap();
        net.push(Box::new(ReuseConv2d::new(
            "conv1",
            g1,
            8,
            ReuseConfig::new(3, 4, false),
            &mut rng,
        )));
        net.push(Box::new(Relu::new("relu1")));
        let g2 = ConvGeom::new(6, 6, 8, 3, 3, 1, 0).unwrap();
        net.push(Box::new(ReuseConv2d::new(
            "conv2",
            g2,
            8,
            ReuseConfig::new(3, 4, false),
            &mut rng,
        )));
        net.push(Box::new(Relu::new("relu2")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 8, 4, &mut rng)));
        net
    }

    fn probe(seed: u64) -> (Tensor4, Vec<usize>) {
        let mut rng = AdrRng::seeded(seed);
        let images =
            Tensor4::from_fn(8, 8, 8, 3, |n, _, _, _| (n % 4) as f32 * 0.5 + 0.1 * rng.gauss());
        let labels = (0..8).map(|n| n % 4).collect();
        (images, labels)
    }

    #[test]
    fn controller_discovers_both_reuse_layers() {
        let mut net = reuse_net(1);
        let c = AdaptiveController::for_network(&mut net, 8, 6, 3, 0.01, 0, false).unwrap();
        assert_eq!(c.plans().len(), 2);
        assert_eq!(c.plans()[0].layer_index, 0);
        assert_eq!(c.plans()[1].layer_index, 2);
    }

    #[test]
    fn initial_stage_is_most_aggressive() {
        let mut net = reuse_net(2);
        let c = AdaptiveController::for_network(&mut net, 8, 6, 3, 0.01, 0, false).unwrap();
        for (layer_idx, (l, h)) in c.current_settings() {
            let plan = c.plans().iter().find(|p| p.layer_index == layer_idx).unwrap();
            assert_eq!((l, h), plan.candidates.settings()[0]);
        }
        // And the layers actually carry those configs.
        let any = net.layers_mut()[0].as_any_mut().unwrap();
        let reuse = any.downcast_mut::<ReuseConv2d>().unwrap();
        let cfg = reuse.config();
        assert_eq!((cfg.sub_vector_len, cfg.num_hashes), c.plans()[0].candidates.settings()[0]);
    }

    #[test]
    fn plateau_detection_fires_on_flat_loss() {
        let mut net = reuse_net(3);
        let mut c = AdaptiveController::for_network(&mut net, 8, 6, 2, 0.01, 0, false).unwrap();
        assert!(!c.observe_loss(1.0));
        assert!(!c.observe_loss(1.0));
        assert!(c.observe_loss(1.0));
    }

    #[test]
    fn advance_moves_forward_and_eventually_exhausts() {
        let mut net = reuse_net(4);
        let mut c = AdaptiveController::for_network(&mut net, 8, 4, 2, 0.01, 0, false).unwrap();
        let (images, labels) = probe(5);
        let mut stages = vec![c.stage()];
        for _ in 0..64 {
            match c.advance(&mut net, &images, &labels, 0.7) {
                AdvanceOutcome::Switched { stage, .. } => stages.push(stage),
                AdvanceOutcome::Exhausted => break,
            }
        }
        assert!(c.is_exhausted(), "controller should reach the end");
        assert!(stages.windows(2).all(|w| w[1] > w[0]), "stages strictly increase");
        // Final configs are each layer's most precise setting.
        for (layer_idx, (l, h)) in c.current_settings() {
            let plan = c.plans().iter().find(|p| p.layer_index == layer_idx).unwrap();
            assert_eq!((l, h), *plan.candidates.settings().last().unwrap());
        }
    }

    #[test]
    fn advance_applies_configs_to_layers() {
        let mut net = reuse_net(6);
        let mut c = AdaptiveController::for_network(&mut net, 8, 4, 2, 0.01, 0, false).unwrap();
        let (images, labels) = probe(7);
        c.advance(&mut net, &images, &labels, 0.2);
        let settings = c.current_settings();
        let any = net.layers_mut()[0].as_any_mut().unwrap();
        let cfg = any.downcast_mut::<ReuseConv2d>().unwrap().config();
        assert_eq!((cfg.sub_vector_len, cfg.num_hashes), settings[0].1);
    }

    #[test]
    fn set_cluster_reuse_propagates() {
        let mut net = reuse_net(8);
        let mut c = AdaptiveController::for_network(&mut net, 8, 4, 2, 0.01, 0, true).unwrap();
        let any = net.layers_mut()[0].as_any_mut().unwrap();
        assert!(any.downcast_mut::<ReuseConv2d>().unwrap().config().cluster_reuse);
        c.set_cluster_reuse(&mut net, false);
        let any = net.layers_mut()[0].as_any_mut().unwrap();
        assert!(!any.downcast_mut::<ReuseConv2d>().unwrap().config().cluster_reuse);
    }

    #[test]
    fn dense_only_network_is_a_typed_error() {
        let mut rng = AdrRng::seeded(9);
        let mut net = Network::new((4, 4, 1));
        net.push(Box::new(Dense::new("fc", 16, 2, &mut rng)));
        let err = AdaptiveController::for_network(&mut net, 8, 4, 2, 0.01, 0, false).unwrap_err();
        assert_eq!(err, ControllerError::NoReuseLayers);
        assert!(err.to_string().contains("no ReuseConv2d"), "{err}");
    }

    #[test]
    fn snapshot_restore_round_trips_stage_and_plateau() {
        let mut net = reuse_net(10);
        let mut c = AdaptiveController::for_network(&mut net, 8, 4, 3, 0.01, 0, false).unwrap();
        let (images, labels) = probe(11);
        c.advance(&mut net, &images, &labels, 0.7);
        c.observe_loss(1.0);
        c.observe_loss(1.0);
        let snap = c.snapshot();

        let mut net2 = reuse_net(10);
        let mut c2 = AdaptiveController::for_network(&mut net2, 8, 4, 3, 0.01, 0, false).unwrap();
        c2.restore(&mut net2, &snap).unwrap();
        assert_eq!(c2.stage(), c.stage());
        assert_eq!(c2.current_settings(), c.current_settings());
        // Future plateau observations agree (same window).
        for _ in 0..4 {
            assert_eq!(c.observe_loss(1.0), c2.observe_loss(1.0));
        }
        // And the restored stage was applied to the layers.
        let any = net2.layers_mut()[0].as_any_mut().unwrap();
        let cfg = any.downcast_mut::<ReuseConv2d>().unwrap().config();
        assert_eq!((cfg.sub_vector_len, cfg.num_hashes), c2.current_settings()[0].1);
    }

    #[test]
    fn restore_rejects_out_of_range_stage() {
        let mut net = reuse_net(12);
        let mut c = AdaptiveController::for_network(&mut net, 8, 4, 3, 0.01, 0, false).unwrap();
        let bad = ControllerState {
            stage: c.max_stage() + 5,
            plateau: PlateauState { smoothed: None, best: f32::INFINITY, stale: 0, seen: 0 },
        };
        let err = c.restore(&mut net, &bad).unwrap_err();
        assert!(matches!(err, ControllerError::StageOutOfRange { .. }));
        assert_eq!(c.stage(), 0, "failed restore must not move the cursor");
    }

    #[test]
    fn tighten_walks_to_exhaustion_then_declines() {
        let mut net = reuse_net(13);
        let mut c = AdaptiveController::for_network(&mut net, 8, 4, 3, 0.01, 0, false).unwrap();
        let mut last = 0;
        while let Some(stage) = c.tighten(&mut net) {
            assert_eq!(stage, last + 1);
            last = stage;
        }
        assert!(c.is_exhausted());
        assert_eq!(last, c.max_stage());
        assert!(c.tighten(&mut net).is_none());
    }
}
