//! Runtime health monitoring for training runs.
//!
//! A [`Guardrail`] watches each iteration for the failure shapes that
//! approximate-reuse training can produce — non-finite losses, non-finite
//! parameters (NaN can bypass the loss entirely: ReLU launders `NaN → 0`
//! on the forward pass while the weight gradient still inherits it),
//! sudden loss spikes, and degenerate LSH clusterings (all-singleton or
//! one-giant-cluster). The trainer reacts to a triggered guardrail by
//! rolling back to the last good [`crate::state::TrainState`] and
//! tightening the reuse knobs one stage, bottoming out at the exact
//! im2col GEMM fallback; every detection and reaction is recorded as a
//! [`GuardrailEvent`] in the training report.

use adr_nn::metrics::RunningMean;
use adr_nn::Network;
use adr_reuse::ReuseConv2d;

/// Detection thresholds and rollback budget of a [`Guardrail`].
#[derive(Clone, Debug)]
pub struct GuardrailConfig {
    /// A loss above `factor × smoothed_loss` counts as a spike.
    pub loss_spike_factor: f32,
    /// Healthy observations required before spike detection arms
    /// (early-training losses legitimately jump around).
    pub spike_warmup: usize,
    /// Minimum clustered rows before cluster-shape checks apply —
    /// tiny batches make both degenerate shapes legitimately possible.
    pub min_cluster_rows: usize,
    /// `r_c` at or below this is treated as a one-giant-cluster collapse.
    pub remaining_ratio_floor: f64,
    /// Take a rollback snapshot every this many iterations.
    pub snapshot_every: usize,
    /// After this many rollbacks the guardrail disarms instead of looping
    /// forever on an unrecoverable run.
    pub max_rollbacks: usize,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        Self {
            loss_spike_factor: 4.0,
            spike_warmup: 10,
            min_cluster_rows: 32,
            remaining_ratio_floor: 0.02,
            snapshot_every: 25,
            max_rollbacks: 8,
        }
    }
}

/// What a guardrail detected or did, in report-ready form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardrailEventKind {
    /// The fault harness injected a scheduled fault (bookkeeping, so a
    /// report shows cause next to effect).
    FaultInjected,
    /// The batch loss came back NaN or ±∞.
    NonFiniteLoss,
    /// A learnable parameter went NaN/∞ — catches NaN that ReLU laundered
    /// out of the loss path.
    NonFiniteParams,
    /// The loss jumped past `loss_spike_factor ×` its smoothed value.
    LossSpike,
    /// A reuse layer's clustering collapsed (all-singleton or one-giant).
    DegenerateClustering,
    /// The trainer restored the last good snapshot.
    RolledBack,
    /// The controller advanced one stage toward exact computation.
    StageTightened,
    /// All reuse layers were switched to the exact im2col GEMM fallback.
    ExactFallback,
    /// A periodic checkpoint write failed after exhausting its retries
    /// (non-fatal: training continues, the previous checkpoint survives).
    CheckpointWriteFailed,
    /// The rollback budget ran out; the guardrail stopped intervening.
    GuardrailsDisarmed,
}

/// One timestamped guardrail occurrence, kept in the training report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardrailEvent {
    /// Training iteration (0-based) at which the event occurred.
    pub iteration: usize,
    /// What happened.
    pub kind: GuardrailEventKind,
    /// Human-readable specifics (layer name, observed values, ...).
    pub detail: String,
}

/// The detector: consulted once per iteration with the fresh batch loss
/// and mutable access to the network (parameter and cluster scans).
#[derive(Debug)]
pub struct Guardrail {
    config: GuardrailConfig,
    smoothed: RunningMean,
    observations: usize,
    rollbacks: usize,
}

impl Guardrail {
    /// Creates a guardrail with the given thresholds.
    pub fn new(config: GuardrailConfig) -> Self {
        Self { config, smoothed: RunningMean::new(0.3), observations: 0, rollbacks: 0 }
    }

    /// The active thresholds.
    pub fn config(&self) -> &GuardrailConfig {
        &self.config
    }

    /// Rollbacks performed so far.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// True once the rollback budget is spent; the trainer stops
    /// intervening (and says so in the report) rather than ping-ponging
    /// on an unrecoverable run.
    pub fn disarmed(&self) -> bool {
        self.rollbacks >= self.config.max_rollbacks
    }

    /// Records a rollback and clears the loss window — the smoothed loss
    /// of the poisoned timeline must not judge the restored one.
    pub fn note_rollback(&mut self) {
        self.rollbacks += 1;
        self.smoothed.reset();
        self.observations = 0;
    }

    /// Inspects one completed iteration. Returns the first problem found
    /// (checks ordered most- to least-specific), or `None` when healthy.
    /// Healthy losses feed the spike detector's smoothing window;
    /// triggering losses do not.
    pub fn check(&mut self, loss: f32, net: &mut Network) -> Option<(GuardrailEventKind, String)> {
        if !loss.is_finite() {
            return Some((GuardrailEventKind::NonFiniteLoss, format!("batch loss = {loss}")));
        }
        if let Some(detail) = scan_params(net) {
            return Some((GuardrailEventKind::NonFiniteParams, detail));
        }
        if let Some(detail) = self.scan_clusters(net) {
            return Some((GuardrailEventKind::DegenerateClustering, detail));
        }
        if self.observations > self.config.spike_warmup {
            if let Some(smoothed) = self.smoothed.get() {
                let limit = self.config.loss_spike_factor * smoothed;
                if loss > limit {
                    return Some((
                        GuardrailEventKind::LossSpike,
                        format!(
                            "loss {loss:.4} exceeds {limit:.4} ({:.1}× smoothed {smoothed:.4})",
                            self.config.loss_spike_factor
                        ),
                    ));
                }
            }
        }
        self.observations += 1;
        self.smoothed.update(loss);
        None
    }

    fn scan_clusters(&self, net: &mut Network) -> Option<String> {
        for layer in net.layers_mut() {
            let name = layer.name().to_string();
            let Some(reuse) = layer.as_any_mut().and_then(|a| a.downcast_mut::<ReuseConv2d>())
            else {
                continue;
            };
            let stats = reuse.stats();
            if stats.rows < self.config.min_cluster_rows {
                continue;
            }
            // More clusters than 2^H signatures can address means the
            // live families disagree with the configured H — the
            // all-singleton injection shape.
            #[allow(clippy::cast_possible_truncation)]
            let capacity = 2f64.powi(reuse.config().num_hashes.min(52) as i32);
            if stats.avg_clusters > capacity {
                return Some(format!(
                    "layer {name}: {:.1} clusters exceeds 2^H = {capacity} (all-singleton)",
                    stats.avg_clusters
                ));
            }
            if stats.avg_remaining_ratio <= self.config.remaining_ratio_floor {
                return Some(format!(
                    "layer {name}: remaining ratio {:.4} at or below floor {} (one giant cluster)",
                    stats.avg_remaining_ratio, self.config.remaining_ratio_floor
                ));
            }
        }
        None
    }
}

/// Scans every learnable parameter for NaN/∞; returns a description of
/// the first offending layer.
fn scan_params(net: &mut Network) -> Option<String> {
    for layer in net.layers_mut() {
        let name = layer.name().to_string();
        for p in layer.params_mut() {
            if let Some((i, v)) = p.data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                return Some(format!("layer {name}: param[{i}] = {v}"));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::dense::Dense;
    use adr_tensor::rng::AdrRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((2, 2, 1));
        net.push(Box::new(Dense::new("fc", 4, 2, &mut rng)));
        net
    }

    #[test]
    fn healthy_iterations_pass() {
        let mut g = Guardrail::new(GuardrailConfig::default());
        let mut net = tiny_net(1);
        for _ in 0..30 {
            assert_eq!(g.check(1.0, &mut net), None);
        }
    }

    #[test]
    fn non_finite_loss_trips_first() {
        let mut g = Guardrail::new(GuardrailConfig::default());
        let mut net = tiny_net(2);
        let (kind, _) = g.check(f32::NAN, &mut net).unwrap();
        assert_eq!(kind, GuardrailEventKind::NonFiniteLoss);
        let (kind, _) = g.check(f32::INFINITY, &mut net).unwrap();
        assert_eq!(kind, GuardrailEventKind::NonFiniteLoss);
    }

    #[test]
    fn nan_params_are_caught_even_with_finite_loss() {
        let mut g = Guardrail::new(GuardrailConfig::default());
        let mut net = tiny_net(3);
        net.layers_mut()[0].params_mut()[0].data[1] = f32::NAN;
        let (kind, detail) = g.check(0.5, &mut net).unwrap();
        assert_eq!(kind, GuardrailEventKind::NonFiniteParams);
        assert!(detail.contains("fc"), "{detail}");
    }

    #[test]
    fn loss_spike_requires_warmup_and_factor() {
        let cfg = GuardrailConfig { spike_warmup: 5, loss_spike_factor: 3.0, ..Default::default() };
        let mut g = Guardrail::new(cfg);
        let mut net = tiny_net(4);
        // A huge loss during warmup is tolerated (and not smoothed in).
        assert_eq!(g.check(100.0, &mut net).map(|(k, _)| k), None);
        for _ in 0..10 {
            assert_eq!(g.check(1.0, &mut net), None);
        }
        assert_eq!(g.check(2.5, &mut net), None, "below factor: fine");
        let (kind, _) = g.check(50.0, &mut net).unwrap();
        assert_eq!(kind, GuardrailEventKind::LossSpike);
    }

    #[test]
    fn spike_window_resets_on_rollback() {
        let cfg = GuardrailConfig { spike_warmup: 2, loss_spike_factor: 2.0, ..Default::default() };
        let mut g = Guardrail::new(cfg);
        let mut net = tiny_net(5);
        for _ in 0..5 {
            g.check(1.0, &mut net);
        }
        assert!(g.check(10.0, &mut net).is_some());
        g.note_rollback();
        assert_eq!(g.rollbacks(), 1);
        // Fresh window: the same loss is warmup again, not a spike.
        assert_eq!(g.check(10.0, &mut net), None);
    }

    #[test]
    fn disarms_after_budget() {
        let cfg = GuardrailConfig { max_rollbacks: 2, ..Default::default() };
        let mut g = Guardrail::new(cfg);
        assert!(!g.disarmed());
        g.note_rollback();
        g.note_rollback();
        assert!(g.disarmed());
    }
}
