//! The training loop tying strategies, controller and network together.

use std::time::Instant;

use adr_nn::metrics::{EpochMeter, PlateauDetector};
use adr_nn::{Network, Sgd};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::Tensor4;

use crate::controller::{AdaptiveController, AdvanceOutcome};
use crate::report::{SwitchEvent, TrainReport};
use crate::strategy::{Strategy, StrategyKind};

/// Supplies labelled training batches plus a held-out probe batch.
///
/// The trainer cycles `batch(0..num_batches)` repeatedly; `probe` must stay
/// disjoint from the training stream so accuracy checks (the controller's
/// Amendment tests and the target-accuracy stop rule) are honest.
pub trait BatchSource {
    /// Distinct training batches available.
    fn num_batches(&self) -> usize;

    /// The `index`-th training batch (images, labels).
    fn batch(&mut self, index: usize) -> (Tensor4, Vec<usize>);

    /// A fixed held-out batch for probing accuracy.
    fn probe(&mut self) -> (Tensor4, Vec<usize>);
}

/// Adapts a closure into a [`BatchSource`].
pub struct FnBatchSource<F> {
    num_batches: usize,
    make_batch: F,
    probe: (Tensor4, Vec<usize>),
}

impl<F: FnMut(usize) -> (Tensor4, Vec<usize>)> FnBatchSource<F> {
    /// Creates a source from a batch-producing closure and a fixed probe.
    ///
    /// # Panics
    /// Panics if `num_batches == 0` or the probe is empty.
    pub fn new(num_batches: usize, make_batch: F, probe: (Tensor4, Vec<usize>)) -> Self {
        assert!(num_batches > 0, "need at least one training batch");
        assert!(!probe.1.is_empty(), "probe batch must be non-empty");
        Self { num_batches, make_batch, probe }
    }
}

impl<F: FnMut(usize) -> (Tensor4, Vec<usize>)> BatchSource for FnBatchSource<F> {
    fn num_batches(&self) -> usize {
        self.num_batches
    }

    fn batch(&mut self, index: usize) -> (Tensor4, Vec<usize>) {
        (self.make_batch)(index)
    }

    fn probe(&mut self) -> (Tensor4, Vec<usize>) {
        self.probe.clone()
    }
}

/// Trainer knobs.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Hard iteration budget.
    pub max_iterations: usize,
    /// Stop early once probe accuracy reaches this (the paper trains every
    /// strategy to the *same* accuracy and compares time).
    pub target_accuracy: Option<f32>,
    /// Probe-evaluation cadence in iterations.
    pub eval_every: usize,
    /// Plateau patience (loss observations without improvement).
    pub plateau_patience: usize,
    /// Relative loss improvement that resets the plateau counter.
    pub plateau_min_delta: f32,
    /// Observations after each phase switch during which plateau detection
    /// stays quiet.
    pub plateau_warmup: usize,
    /// Cap on distinct `H` candidates per layer (Strategy 2).
    pub max_h_values: usize,
    /// Keep at most this many history samples.
    pub history_samples: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            target_accuracy: None,
            eval_every: 10,
            plateau_patience: 8,
            plateau_min_delta: 0.005,
            plateau_warmup: 20,
            max_h_values: 6,
            history_samples: 256,
        }
    }
}

/// Runs a strategy-driven training loop over a network.
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics on zero `max_iterations` or `eval_every`.
    pub fn new(config: TrainerConfig) -> Self {
        assert!(config.max_iterations > 0, "max_iterations must be positive");
        assert!(config.eval_every > 0, "eval_every must be positive");
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Applies a fixed `{L, H, CR}` to every reuse layer in the network.
    fn apply_fixed(net: &mut Network, l: usize, h: usize, cr: bool) {
        for layer in net.layers_mut() {
            if let Some(any) = layer.as_any_mut() {
                if let Some(reuse) = any.downcast_mut::<ReuseConv2d>() {
                    reuse.set_config(ReuseConfig::new(l, h, cr));
                }
            }
        }
    }

    /// Trains `net` with `strategy` on batches from `source` using `sgd`.
    ///
    /// The network must already be built to match the strategy (reuse
    /// convolutions for reuse strategies, dense for the baseline); model
    /// builders in `adr-models` handle that.
    ///
    /// # Panics
    /// Panics when an adaptive strategy is used on a network that contains
    /// no `ReuseConv2d` layers.
    pub fn train(
        &self,
        net: &mut Network,
        strategy: Strategy,
        source: &mut dyn BatchSource,
        sgd: &mut Sgd,
    ) -> TrainReport {
        let cfg = &self.config;
        let batch_size_hint = source.probe().1.len();

        // Strategy-specific setup.
        let mut controller = match strategy.kind {
            StrategyKind::AdaptiveLh => Some(AdaptiveController::for_network(
                net,
                batch_size_hint,
                cfg.max_h_values,
                cfg.plateau_patience,
                cfg.plateau_min_delta,
                cfg.plateau_warmup,
                false,
            )),
            StrategyKind::FixedLh { l, h } => {
                Self::apply_fixed(net, l, h, false);
                None
            }
            StrategyKind::ClusterReuseSchedule { l, h } => {
                Self::apply_fixed(net, l, h, true);
                None
            }
            StrategyKind::Baseline => None,
        };
        // Strategy 3 needs its own plateau detector; Strategy 2's lives in
        // the controller.
        let mut cr_plateau = matches!(strategy.kind, StrategyKind::ClusterReuseSchedule { .. })
            .then(|| {
                PlateauDetector::new(cfg.plateau_patience, cfg.plateau_min_delta)
                    .with_warmup(cfg.plateau_warmup)
            });
        let mut cr_active = matches!(strategy.kind, StrategyKind::ClusterReuseSchedule { .. });

        net.reset_flops();
        let (probe_images, probe_labels) = source.probe();
        let mut switches = Vec::new();
        let mut loss_history = Vec::new();
        let mut accuracy_history = Vec::new();
        let mut iterations_to_target = None;
        let mut running = EpochMeter::new();
        let history_stride = (cfg.max_iterations / cfg.history_samples.max(1)).max(1);

        let start = Instant::now();
        let mut iterations_run = 0;
        for iter in 0..cfg.max_iterations {
            iterations_run = iter + 1;
            let (images, labels) = source.batch(iter % source.num_batches());
            let step = net.train_batch(&images, &labels, sgd);
            running.record(step.loss, step.correct, step.batch_size);
            if iter % history_stride == 0 {
                loss_history.push((iter, step.loss));
            }

            // Strategy-specific plateau handling.
            match strategy.kind {
                StrategyKind::AdaptiveLh => {
                    let ctrl = controller.as_mut().expect("adaptive controller exists");
                    if ctrl.observe_loss(step.loss) && !ctrl.is_exhausted() {
                        let train_acc = running.accuracy();
                        match ctrl.advance(net, &probe_images, &probe_labels, train_acc) {
                            AdvanceOutcome::Switched { stage, rule } => {
                                switches.push(SwitchEvent {
                                    iteration: iter,
                                    description: format!(
                                        "stage {stage}/{} (rule {rule}): {:?}",
                                        ctrl.max_stage(),
                                        ctrl.current_settings()
                                    ),
                                });
                                running.reset();
                            }
                            AdvanceOutcome::Exhausted => {}
                        }
                    }
                }
                StrategyKind::ClusterReuseSchedule { l, h } => {
                    if cr_active {
                        let det = cr_plateau.as_mut().expect("CR plateau detector exists");
                        if det.observe(step.loss) {
                            Self::apply_fixed(net, l, h, false);
                            cr_active = false;
                            switches.push(SwitchEvent {
                                iteration: iter,
                                description: "cluster reuse off (CR 1 -> 0)".into(),
                            });
                        }
                    }
                }
                StrategyKind::Baseline | StrategyKind::FixedLh { .. } => {}
            }

            // Periodic probe evaluation + target stop rule.
            if (iter + 1) % cfg.eval_every == 0 {
                let eval = net.evaluate(&probe_images, &probe_labels);
                accuracy_history.push((iter, eval.accuracy));
                if let Some(target) = cfg.target_accuracy {
                    if eval.accuracy >= target && iterations_to_target.is_none() {
                        iterations_to_target = Some(iter + 1);
                        break;
                    }
                }
            }
        }
        let wall_time = start.elapsed();

        let final_eval = net.evaluate(&probe_images, &probe_labels);
        TrainReport {
            strategy: strategy.name().to_string(),
            iterations_run,
            iterations_to_target,
            final_loss: final_eval.loss,
            final_accuracy: final_eval.accuracy,
            actual_flops: net.flops(),
            baseline_flops: net.baseline_flops(),
            wall_time,
            switches,
            loss_history,
            accuracy_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::dense::Dense;
    use adr_nn::relu::Relu;
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;

    /// Tiny 3-class problem: class = which image row band is bright.
    fn toy_source(seed: u64) -> FnBatchSource<impl FnMut(usize) -> (Tensor4, Vec<usize>)> {
        let make = move |index: usize| make_batch(seed + index as u64);
        let probe = make_batch(seed + 1000);
        FnBatchSource::new(4, make, probe)
    }

    fn make_batch(seed: u64) -> (Tensor4, Vec<usize>) {
        let mut rng = AdrRng::seeded(seed);
        let n = 6;
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let images = Tensor4::from_fn(n, 6, 6, 1, |b, y, _, _| {
            let bright = y / 2 == labels[b];
            (if bright { 1.0 } else { 0.0 }) + 0.05 * rng.gauss()
        });
        (images, labels)
    }

    fn dense_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(adr_nn::conv::Conv2d::new("conv1", g, 6, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 6, 3, &mut rng)));
        net
    }

    fn reuse_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(ReuseConv2d::new(
            "conv1",
            g,
            6,
            ReuseConfig::new(3, 6, false),
            &mut rng,
        )));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 6, 3, &mut rng)));
        net
    }

    fn quick_config() -> TrainerConfig {
        TrainerConfig {
            max_iterations: 120,
            eval_every: 10,
            plateau_patience: 5,
            plateau_min_delta: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn fn_batch_source_cycles_and_probes() {
        let mut calls = 0usize;
        let probe = make_batch(999);
        let mut source = FnBatchSource::new(
            3,
            move |index| {
                calls += 1;
                let _ = calls;
                make_batch(index as u64)
            },
            probe.clone(),
        );
        assert_eq!(source.num_batches(), 3);
        let (images, labels) = source.batch(1);
        assert_eq!(images.batch(), labels.len());
        let (p_images, p_labels) = source.probe();
        assert_eq!(p_images.as_slice(), probe.0.as_slice());
        assert_eq!(p_labels, probe.1);
    }

    #[test]
    #[should_panic(expected = "at least one training batch")]
    fn zero_batch_source_panics() {
        let probe = make_batch(1);
        let _ = FnBatchSource::new(0, |i| make_batch(i as u64), probe);
    }

    #[test]
    fn baseline_training_learns_toy_task() {
        let trainer = Trainer::new(quick_config());
        let mut net = dense_net(1);
        let mut source = toy_source(10);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::baseline(), &mut source, &mut sgd);
        assert!(report.final_accuracy > 0.8, "accuracy {}", report.final_accuracy);
        assert_eq!(report.actual_flops, report.baseline_flops);
        assert!(report.switches.is_empty());
    }

    #[test]
    fn fixed_strategy_saves_flops_and_learns() {
        let trainer = Trainer::new(quick_config());
        let mut net = reuse_net(2);
        let mut source = toy_source(20);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::fixed(3, 6), &mut source, &mut sgd);
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
        assert!(
            report.actual_flops.total() < report.baseline_flops.total(),
            "reuse must do less work than dense"
        );
    }

    #[test]
    fn adaptive_strategy_switches_stages() {
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 200,
            plateau_patience: 3,
            plateau_min_delta: 0.02,
            ..quick_config()
        });
        let mut net = reuse_net(3);
        let mut source = toy_source(30);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::adaptive(), &mut source, &mut sgd);
        assert!(!report.switches.is_empty(), "adaptive run should switch at least once");
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn cluster_reuse_strategy_turns_cr_off_on_plateau() {
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 200,
            plateau_patience: 3,
            plateau_min_delta: 0.02,
            ..quick_config()
        });
        let mut net = reuse_net(4);
        let mut source = toy_source(40);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::cluster_reuse(3, 6), &mut source, &mut sgd);
        let cr_switches: Vec<_> = report
            .switches
            .iter()
            .filter(|s| s.description.contains("cluster reuse off"))
            .collect();
        assert_eq!(cr_switches.len(), 1, "CR must switch off exactly once");
    }

    #[test]
    fn target_accuracy_stops_early() {
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 2000,
            target_accuracy: Some(0.8),
            ..quick_config()
        });
        let mut net = dense_net(5);
        let mut source = toy_source(50);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::baseline(), &mut source, &mut sgd);
        assert!(report.iterations_to_target.is_some());
        assert!(report.iterations_run < 2000);
    }

    #[test]
    fn histories_are_sampled() {
        let trainer = Trainer::new(quick_config());
        let mut net = dense_net(6);
        let mut source = toy_source(60);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::baseline(), &mut source, &mut sgd);
        assert!(!report.loss_history.is_empty());
        assert!(!report.accuracy_history.is_empty());
        assert!(report.loss_history.len() <= 256 + 1);
    }
}
