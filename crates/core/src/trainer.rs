//! The training loop tying strategies, controller and network together,
//! with optional fault tolerance: periodic crash-safe [`TrainState`]
//! checkpoints, resume, runtime guardrails with rollback, and a
//! deterministic fault-injection hook.

use std::path::PathBuf;
use std::time::Instant;

use adr_nn::durable::{IoFault, NoFaults, RetryPolicy};
use adr_nn::metrics::{EpochMeter, PlateauDetector};
use adr_nn::{Network, Sgd};
use adr_reuse::{ReuseConfig, ReuseConv2d};
use adr_tensor::Tensor4;

use crate::controller::{AdaptiveController, AdvanceOutcome, ControllerError};
use crate::faults::{FaultKind, FaultPlan};
use crate::guardrails::{Guardrail, GuardrailEvent, GuardrailEventKind};
use crate::report::{SwitchEvent, TrainReport};
use crate::state::{StateError, TrainState};
use crate::strategy::{Strategy, StrategyKind};

/// Supplies labelled training batches plus a held-out probe batch.
///
/// The trainer cycles `batch(0..num_batches)` repeatedly; `probe` must stay
/// disjoint from the training stream so accuracy checks (the controller's
/// Amendment tests and the target-accuracy stop rule) are honest.
pub trait BatchSource {
    /// Distinct training batches available.
    fn num_batches(&self) -> usize;

    /// The `index`-th training batch (images, labels).
    fn batch(&mut self, index: usize) -> (Tensor4, Vec<usize>);

    /// A fixed held-out batch for probing accuracy.
    fn probe(&mut self) -> (Tensor4, Vec<usize>);

    /// Opaque cursor state persisted into training checkpoints. Sources
    /// whose `batch(index)` is a pure function of `index` (the common
    /// case) need no state and keep the empty default.
    fn snapshot_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores a cursor previously returned by
    /// [`BatchSource::snapshot_state`].
    ///
    /// # Errors
    /// The default implementation accepts only the empty cursor; stateful
    /// sources override both methods and validate their own layout.
    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "this batch source is stateless but the checkpoint carries {} cursor words",
                state.len()
            ))
        }
    }
}

/// Adapts a closure into a [`BatchSource`].
pub struct FnBatchSource<F> {
    num_batches: usize,
    make_batch: F,
    probe: (Tensor4, Vec<usize>),
}

impl<F: FnMut(usize) -> (Tensor4, Vec<usize>)> FnBatchSource<F> {
    /// Creates a source from a batch-producing closure and a fixed probe.
    ///
    /// # Panics
    /// Panics if `num_batches == 0` or the probe is empty.
    pub fn new(num_batches: usize, make_batch: F, probe: (Tensor4, Vec<usize>)) -> Self {
        assert!(num_batches > 0, "need at least one training batch");
        assert!(!probe.1.is_empty(), "probe batch must be non-empty");
        Self { num_batches, make_batch, probe }
    }
}

impl<F: FnMut(usize) -> (Tensor4, Vec<usize>)> BatchSource for FnBatchSource<F> {
    fn num_batches(&self) -> usize {
        self.num_batches
    }

    fn batch(&mut self, index: usize) -> (Tensor4, Vec<usize>) {
        (self.make_batch)(index)
    }

    fn probe(&mut self) -> (Tensor4, Vec<usize>) {
        self.probe.clone()
    }
}

/// Trainer knobs.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Hard iteration budget.
    pub max_iterations: usize,
    /// Stop early once probe accuracy reaches this (the paper trains every
    /// strategy to the *same* accuracy and compares time).
    pub target_accuracy: Option<f32>,
    /// Probe-evaluation cadence in iterations.
    pub eval_every: usize,
    /// Plateau patience (loss observations without improvement).
    pub plateau_patience: usize,
    /// Relative loss improvement that resets the plateau counter.
    pub plateau_min_delta: f32,
    /// Observations after each phase switch during which plateau detection
    /// stays quiet.
    pub plateau_warmup: usize,
    /// Cap on distinct `H` candidates per layer (Strategy 2).
    pub max_h_values: usize,
    /// Keep at most this many history samples.
    pub history_samples: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            target_accuracy: None,
            eval_every: 10,
            plateau_patience: 8,
            plateau_min_delta: 0.005,
            plateau_warmup: 20,
            max_h_values: 6,
            history_samples: 256,
        }
    }
}

/// Where and how often to persist full [`TrainState`] checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Destination file, written atomically (the previous checkpoint
    /// survives any failed write).
    pub path: PathBuf,
    /// Save cadence in iterations.
    pub every: usize,
    /// Retry/backoff policy for transient write failures.
    pub retry: RetryPolicy,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` every `every` iterations with default retry.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        Self { path: path.into(), every, retry: RetryPolicy::default() }
    }
}

/// Optional fault-tolerance machinery for one training run. The default
/// (`TrainOptions::default()`) disables all of it, making
/// [`Trainer::train`] behave exactly as before.
#[derive(Default)]
pub struct TrainOptions<'a> {
    /// Resume from this state instead of starting fresh. The strategy must
    /// match and the network must have the same architecture.
    pub resume: Option<TrainState>,
    /// Persist periodic checkpoints.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Arm runtime guardrails (NaN / loss-spike / degenerate-cluster
    /// detection with rollback and stage tightening).
    pub guardrails: Option<crate::guardrails::GuardrailConfig>,
    /// Deterministic fault script (tests and chaos drills).
    pub faults: Option<&'a mut FaultPlan>,
    /// Stop after this many iterations *of this invocation* and mark the
    /// report interrupted — simulates a kill for crash-recovery tests.
    pub halt_after: Option<usize>,
}

/// Why a training run could not start or continue.
#[derive(Debug)]
pub enum TrainError {
    /// The adaptive controller could not be built or restored.
    Controller(ControllerError),
    /// The resume state was rejected (wrong strategy, architecture
    /// mismatch, or a batch source that refused its cursor).
    Resume(StateError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Controller(e) => write!(f, "controller setup failed: {e}"),
            Self::Resume(e) => write!(f, "resume rejected: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Controller(e) => Some(e),
            Self::Resume(e) => Some(e),
        }
    }
}

/// Runs a strategy-driven training loop over a network.
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    /// Panics on zero `max_iterations` or `eval_every`.
    pub fn new(config: TrainerConfig) -> Self {
        assert!(config.max_iterations > 0, "max_iterations must be positive");
        assert!(config.eval_every > 0, "eval_every must be positive");
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Applies a fixed `{L, H, CR}` to every reuse layer in the network.
    fn apply_fixed(net: &mut Network, l: usize, h: usize, cr: bool) {
        for layer in net.layers_mut() {
            if let Some(any) = layer.as_any_mut() {
                if let Some(reuse) = any.downcast_mut::<ReuseConv2d>() {
                    reuse.set_config(ReuseConfig::new(l, h, cr));
                }
            }
        }
    }

    /// Runs `f` over every reuse layer.
    fn for_each_reuse(net: &mut Network, mut f: impl FnMut(&mut ReuseConv2d)) {
        for layer in net.layers_mut() {
            if let Some(reuse) = layer.as_any_mut().and_then(|a| a.downcast_mut::<ReuseConv2d>()) {
                f(reuse);
            }
        }
    }

    /// Trains `net` with `strategy` on batches from `source` using `sgd`,
    /// with fault tolerance disabled (see [`Trainer::train_with`]).
    ///
    /// # Errors
    /// Returns [`TrainError::Controller`] when an adaptive strategy is
    /// used on a network without reuse layers.
    pub fn train(
        &self,
        net: &mut Network,
        strategy: Strategy,
        source: &mut dyn BatchSource,
        sgd: &mut Sgd,
    ) -> Result<TrainReport, TrainError> {
        self.train_with(net, strategy, source, sgd, TrainOptions::default())
    }

    /// Trains with optional resume, periodic crash-safe checkpoints,
    /// guardrails, and fault injection.
    ///
    /// The network must already be built to match the strategy (reuse
    /// convolutions for reuse strategies, dense for the baseline); model
    /// builders in `adr-models` handle that.
    ///
    /// Checkpoints and guardrail snapshots are captured at iteration
    /// boundaries *after* the periodic probe evaluation, so a resumed run
    /// replays the exact FLOP trajectory of an uninterrupted one.
    ///
    /// # Errors
    /// Returns [`TrainError::Controller`] when an adaptive strategy is
    /// used on a network without reuse layers, and [`TrainError::Resume`]
    /// when `options.resume` does not fit the run (strategy mismatch,
    /// different architecture, or a rejected batch-source cursor).
    #[allow(clippy::too_many_lines)]
    pub fn train_with(
        &self,
        net: &mut Network,
        strategy: Strategy,
        source: &mut dyn BatchSource,
        sgd: &mut Sgd,
        options: TrainOptions<'_>,
    ) -> Result<TrainReport, TrainError> {
        let cfg = &self.config;
        let batch_size_hint = source.probe().1.len();

        // Strategy-specific setup.
        let mut controller = match strategy.kind {
            StrategyKind::AdaptiveLh => Some(
                AdaptiveController::for_network(
                    net,
                    batch_size_hint,
                    cfg.max_h_values,
                    cfg.plateau_patience,
                    cfg.plateau_min_delta,
                    cfg.plateau_warmup,
                    false,
                )
                .map_err(TrainError::Controller)?,
            ),
            StrategyKind::FixedLh { l, h } => {
                Self::apply_fixed(net, l, h, false);
                None
            }
            StrategyKind::ClusterReuseSchedule { l, h } => {
                Self::apply_fixed(net, l, h, true);
                None
            }
            StrategyKind::Baseline => None,
        };
        // Strategy 3 needs its own plateau detector; Strategy 2's lives in
        // the controller.
        let mut cr_plateau = matches!(strategy.kind, StrategyKind::ClusterReuseSchedule { .. })
            .then(|| {
                PlateauDetector::new(cfg.plateau_patience, cfg.plateau_min_delta)
                    .with_warmup(cfg.plateau_warmup)
            });
        let mut cr_active = matches!(strategy.kind, StrategyKind::ClusterReuseSchedule { .. });

        let mut running = EpochMeter::new();
        let mut start_iter = 0;

        // Resume: validate everything before the first mutation, then
        // restore model, optimiser, controller cursors and source cursor.
        if let Some(state) = &options.resume {
            state.verify_strategy(strategy).map_err(TrainError::Resume)?;
            state.restore_model(net, sgd).map_err(TrainError::Resume)?;
            if let (Some(ctrl), Some(cs)) = (controller.as_mut(), state.controller.as_ref()) {
                ctrl.restore(net, cs).map_err(TrainError::Controller)?;
            }
            if let (Some(det), Some(ps)) = (cr_plateau.as_mut(), state.cr_plateau.as_ref()) {
                det.restore(ps);
            }
            if let Some(active) = state.cr_active {
                cr_active = active;
                if !active {
                    if let StrategyKind::ClusterReuseSchedule { l, h } = strategy.kind {
                        Self::apply_fixed(net, l, h, false);
                    }
                }
            }
            running.restore(&state.meter);
            source
                .restore_state(&state.source_state)
                .map_err(|e| TrainError::Resume(StateError::SourceState(e)))?;
            start_iter = state.iteration;
        } else {
            net.reset_flops();
        }

        let (probe_images, probe_labels) = source.probe();
        let mut switches = Vec::new();
        let mut loss_history = Vec::new();
        let mut accuracy_history = Vec::new();
        let mut iterations_to_target = None;
        let mut guardrail_events: Vec<GuardrailEvent> = Vec::new();
        let mut interrupted = false;
        let history_stride = (cfg.max_iterations / cfg.history_samples.max(1)).max(1);

        let mut faults = options.faults;
        let mut guardrail = options.guardrails.map(Guardrail::new);
        let mut disarm_logged = false;
        // The rollback target: the last state known healthy.
        let mut last_good = guardrail.as_ref().map(|_| {
            Self::capture_state(
                net,
                sgd,
                strategy,
                start_iter,
                controller.as_ref(),
                cr_plateau.as_ref(),
                cr_active,
                &running,
                source,
            )
        });

        let start = Instant::now();
        let mut iterations_run = start_iter;
        let mut iter = start_iter;
        while iter < cfg.max_iterations {
            iterations_run = iter + 1;
            adr_obs::begin_step();
            let (mut images, labels) = source.batch(iter % source.num_batches());

            // Scheduled fault injection (one-shot per fault).
            if let Some(plan) = faults.as_deref_mut() {
                for kind in plan.take_due(iter) {
                    let detail = Self::apply_fault(net, &mut images, kind);
                    guardrail_events.push(GuardrailEvent {
                        iteration: iter,
                        kind: GuardrailEventKind::FaultInjected,
                        detail,
                    });
                }
            }

            let step = net.train_batch(&images, &labels, sgd);
            running.record(step.loss, step.correct, step.batch_size);
            adr_obs::counter_add("adr_train_steps", &[], 1);
            adr_obs::gauge_set("adr_train_loss", &[], f64::from(step.loss));
            adr_obs::histogram_record("adr_train_loss_per_step", &[], f64::from(step.loss));
            if iter % history_stride == 0 {
                loss_history.push((iter, step.loss));
            }

            // Guardrails: detect, roll back, tighten.
            if let Some(g) = guardrail.as_mut() {
                if let Some((kind, detail)) = g.check(step.loss, net) {
                    guardrail_events.push(GuardrailEvent { iteration: iter, kind, detail });
                    if g.disarmed() {
                        if !disarm_logged {
                            disarm_logged = true;
                            guardrail_events.push(GuardrailEvent {
                                iteration: iter,
                                kind: GuardrailEventKind::GuardrailsDisarmed,
                                detail: format!(
                                    "rollback budget ({}) spent; continuing unguarded",
                                    g.config().max_rollbacks
                                ),
                            });
                        }
                    } else if let Some(state) = last_good.clone() {
                        g.note_rollback();
                        state.restore_model(net, sgd).map_err(TrainError::Resume)?;
                        if let (Some(ctrl), Some(cs)) =
                            (controller.as_mut(), state.controller.as_ref())
                        {
                            ctrl.restore(net, cs).map_err(TrainError::Controller)?;
                        }
                        if let (Some(det), Some(ps)) =
                            (cr_plateau.as_mut(), state.cr_plateau.as_ref())
                        {
                            det.restore(ps);
                        }
                        if let Some(active) = state.cr_active {
                            cr_active = active;
                        }
                        running.restore(&state.meter);
                        source
                            .restore_state(&state.source_state)
                            .map_err(|e| TrainError::Resume(StateError::SourceState(e)))?;
                        // Injected degenerate LSH families live outside the
                        // snapshot; rebuild them from the (restored) config.
                        Self::for_each_reuse(net, ReuseConv2d::rebuild_families);
                        adr_obs::counter_add("adr_train_rollbacks", &[], 1);
                        guardrail_events.push(GuardrailEvent {
                            iteration: iter,
                            kind: GuardrailEventKind::RolledBack,
                            detail: format!("restored snapshot @ {}", state.iteration),
                        });

                        // Tighten one stage toward exact computation.
                        let tightened = controller
                            .as_mut()
                            .and_then(|ctrl| ctrl.tighten(net).map(|s| (s, ctrl.max_stage())));
                        match tightened {
                            Some((stage, max_stage)) => {
                                guardrail_events.push(GuardrailEvent {
                                    iteration: iter,
                                    kind: GuardrailEventKind::StageTightened,
                                    detail: format!("stage {stage}/{max_stage}"),
                                });
                            }
                            None => {
                                Self::for_each_reuse(net, ReuseConv2d::exact_fallback);
                                guardrail_events.push(GuardrailEvent {
                                    iteration: iter,
                                    kind: GuardrailEventKind::ExactFallback,
                                    detail: "all reuse layers switched to exact im2col GEMM".into(),
                                });
                            }
                        }

                        // The snapshot now reflects the tightened knobs, so
                        // a second trip through the same fault does not
                        // re-loosen them.
                        last_good = Some(Self::capture_state(
                            net,
                            sgd,
                            strategy,
                            state.iteration,
                            controller.as_ref(),
                            cr_plateau.as_ref(),
                            cr_active,
                            &running,
                            source,
                        ));
                        iter = state.iteration;
                        continue;
                    }
                }
            }

            // Strategy-specific plateau handling.
            match strategy.kind {
                // The controller/detector is always `Some` for its own
                // strategy (set up above); `if let` keeps the training
                // loop panic-free regardless.
                StrategyKind::AdaptiveLh => {
                    if let Some(ctrl) = controller.as_mut() {
                        if ctrl.observe_loss(step.loss) && !ctrl.is_exhausted() {
                            let train_acc = running.accuracy();
                            match ctrl.advance(net, &probe_images, &probe_labels, train_acc) {
                                AdvanceOutcome::Switched { stage, rule } => {
                                    switches.push(SwitchEvent {
                                        iteration: iter,
                                        description: format!(
                                            "stage {stage}/{} (rule {rule}): {:?}",
                                            ctrl.max_stage(),
                                            ctrl.current_settings()
                                        ),
                                    });
                                    running.reset();
                                }
                                AdvanceOutcome::Exhausted => {}
                            }
                        }
                    }
                }
                StrategyKind::ClusterReuseSchedule { l, h } => {
                    if let (true, Some(det)) = (cr_active, cr_plateau.as_mut()) {
                        if det.observe(step.loss) {
                            Self::apply_fixed(net, l, h, false);
                            cr_active = false;
                            switches.push(SwitchEvent {
                                iteration: iter,
                                description: "cluster reuse off (CR 1 -> 0)".into(),
                            });
                        }
                    }
                }
                StrategyKind::Baseline | StrategyKind::FixedLh { .. } => {}
            }

            // Periodic probe evaluation + target stop rule.
            let boundary = iter + 1;
            if boundary % cfg.eval_every == 0 {
                let eval = net.evaluate(&probe_images, &probe_labels);
                accuracy_history.push((iter, eval.accuracy));
                if let Some(target) = cfg.target_accuracy {
                    if eval.accuracy >= target && iterations_to_target.is_none() {
                        iterations_to_target = Some(boundary);
                        break;
                    }
                }
            }

            // Snapshots come after the eval so that a resumed run's FLOP
            // counters match an uninterrupted run bit for bit.
            if let Some(g) = guardrail.as_ref() {
                if boundary % g.config().snapshot_every == 0 {
                    last_good = Some(Self::capture_state(
                        net,
                        sgd,
                        strategy,
                        boundary,
                        controller.as_ref(),
                        cr_plateau.as_ref(),
                        cr_active,
                        &running,
                        source,
                    ));
                }
            }
            if let Some(policy) = &options.checkpoint {
                if boundary % policy.every == 0 {
                    let state = Self::capture_state(
                        net,
                        sgd,
                        strategy,
                        boundary,
                        controller.as_ref(),
                        cr_plateau.as_ref(),
                        cr_active,
                        &running,
                        source,
                    );
                    let mut no_faults = NoFaults;
                    let sink: &mut dyn IoFault = match faults.as_deref_mut() {
                        Some(plan) => plan,
                        None => &mut no_faults,
                    };
                    match state.save_with(&policy.path, policy.retry, sink) {
                        Ok(bytes) => {
                            adr_obs::counter_add("adr_train_checkpoints", &[], 1);
                            adr_obs::counter_add(
                                "adr_train_checkpoint_bytes",
                                &[],
                                u64::try_from(bytes).unwrap_or(u64::MAX),
                            );
                        }
                        Err(e) => {
                            guardrail_events.push(GuardrailEvent {
                                iteration: iter,
                                kind: GuardrailEventKind::CheckpointWriteFailed,
                                detail: format!(
                                    "{e} (previous checkpoint at {} still valid)",
                                    policy.path.display()
                                ),
                            });
                        }
                    }
                }
            }

            if let Some(halt) = options.halt_after {
                if boundary - start_iter >= halt {
                    interrupted = true;
                    break;
                }
            }
            iter = boundary;
        }
        let wall_time = start.elapsed();

        let final_eval = net.evaluate(&probe_images, &probe_labels);
        Ok(TrainReport {
            strategy: strategy.name().to_string(),
            iterations_run,
            iterations_to_target,
            final_loss: final_eval.loss,
            final_accuracy: final_eval.accuracy,
            actual_flops: net.flops(),
            baseline_flops: net.baseline_flops(),
            wall_time,
            switches,
            loss_history,
            accuracy_history,
            guardrail_events,
            interrupted,
        })
    }

    /// Captures a complete [`TrainState`] for `iteration`.
    #[allow(clippy::too_many_arguments)]
    fn capture_state(
        net: &mut Network,
        sgd: &Sgd,
        strategy: Strategy,
        iteration: usize,
        controller: Option<&AdaptiveController>,
        cr_plateau: Option<&PlateauDetector>,
        cr_active: bool,
        running: &EpochMeter,
        source: &dyn BatchSource,
    ) -> TrainState {
        let mut state = TrainState::capture(net, sgd, strategy, iteration);
        state.controller = controller.map(AdaptiveController::snapshot);
        state.cr_plateau = cr_plateau.map(PlateauDetector::snapshot);
        state.cr_active =
            matches!(strategy.kind, StrategyKind::ClusterReuseSchedule { .. }).then_some(cr_active);
        state.meter = running.snapshot();
        state.source_state = source.snapshot_state();
        state
    }

    /// Applies one injected fault; returns the report detail line.
    fn apply_fault(net: &mut Network, images: &mut Tensor4, kind: FaultKind) -> String {
        match kind {
            FaultKind::NanActivations => {
                images.as_mut_slice()[0] = f32::NAN;
                "NaN written into batch activations".into()
            }
            FaultKind::InfActivations => {
                images.as_mut_slice()[0] = f32::INFINITY;
                "Inf written into batch activations".into()
            }
            FaultKind::NanWeights => {
                for layer in net.layers_mut() {
                    let name = layer.name().to_string();
                    if let Some(p) = layer.params_mut().into_iter().next() {
                        if let Some(w) = p.data.first_mut() {
                            *w = f32::NAN;
                            return format!("NaN written into weights of layer {name}");
                        }
                    }
                }
                "NaN weight fault found no parameters to poison".into()
            }
            FaultKind::DegenerateClusters(mode) => {
                let mut hit = 0usize;
                Self::for_each_reuse(net, |reuse| {
                    reuse.inject_degenerate_clustering(mode);
                    hit += 1;
                });
                format!("{mode:?} clustering injected into {hit} reuse layer(s)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::dense::Dense;
    use adr_nn::relu::Relu;
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;

    /// Tiny 3-class problem: class = which image row band is bright.
    fn toy_source(seed: u64) -> FnBatchSource<impl FnMut(usize) -> (Tensor4, Vec<usize>)> {
        let make = move |index: usize| make_batch(seed + index as u64);
        let probe = make_batch(seed + 1000);
        FnBatchSource::new(4, make, probe)
    }

    fn make_batch(seed: u64) -> (Tensor4, Vec<usize>) {
        let mut rng = AdrRng::seeded(seed);
        let n = 6;
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let images = Tensor4::from_fn(n, 6, 6, 1, |b, y, _, _| {
            let bright = y / 2 == labels[b];
            (if bright { 1.0 } else { 0.0 }) + 0.05 * rng.gauss()
        });
        (images, labels)
    }

    fn dense_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(adr_nn::conv::Conv2d::new("conv1", g, 6, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 6, 3, &mut rng)));
        net
    }

    fn reuse_net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(ReuseConv2d::new(
            "conv1",
            g,
            6,
            ReuseConfig::new(3, 6, false),
            &mut rng,
        )));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 6, 3, &mut rng)));
        net
    }

    fn quick_config() -> TrainerConfig {
        TrainerConfig {
            max_iterations: 120,
            eval_every: 10,
            plateau_patience: 5,
            plateau_min_delta: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn fn_batch_source_cycles_and_probes() {
        let mut calls = 0usize;
        let probe = make_batch(999);
        let mut source = FnBatchSource::new(
            3,
            move |index| {
                calls += 1;
                let _ = calls;
                make_batch(index as u64)
            },
            probe.clone(),
        );
        assert_eq!(source.num_batches(), 3);
        let (images, labels) = source.batch(1);
        assert_eq!(images.batch(), labels.len());
        let (p_images, p_labels) = source.probe();
        assert_eq!(p_images.as_slice(), probe.0.as_slice());
        assert_eq!(p_labels, probe.1);
        // Stateless by default: empty cursor round-trips, non-empty fails.
        assert!(source.snapshot_state().is_empty());
        assert!(source.restore_state(&[]).is_ok());
        assert!(source.restore_state(&[1]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one training batch")]
    fn zero_batch_source_panics() {
        let probe = make_batch(1);
        let _ = FnBatchSource::new(0, |i| make_batch(i as u64), probe);
    }

    #[test]
    fn baseline_training_learns_toy_task() {
        let trainer = Trainer::new(quick_config());
        let mut net = dense_net(1);
        let mut source = toy_source(10);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::baseline(), &mut source, &mut sgd).unwrap();
        assert!(report.final_accuracy > 0.8, "accuracy {}", report.final_accuracy);
        assert_eq!(report.actual_flops, report.baseline_flops);
        assert!(report.switches.is_empty());
        assert!(report.guardrail_events.is_empty());
        assert!(!report.interrupted);
    }

    #[test]
    fn fixed_strategy_saves_flops_and_learns() {
        let trainer = Trainer::new(quick_config());
        let mut net = reuse_net(2);
        let mut source = toy_source(20);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::fixed(3, 6), &mut source, &mut sgd).unwrap();
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
        assert!(
            report.actual_flops.total() < report.baseline_flops.total(),
            "reuse must do less work than dense"
        );
    }

    #[test]
    fn adaptive_strategy_switches_stages() {
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 200,
            plateau_patience: 3,
            plateau_min_delta: 0.02,
            ..quick_config()
        });
        let mut net = reuse_net(3);
        let mut source = toy_source(30);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::adaptive(), &mut source, &mut sgd).unwrap();
        assert!(!report.switches.is_empty(), "adaptive run should switch at least once");
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn adaptive_strategy_needs_reuse_layers() {
        let trainer = Trainer::new(quick_config());
        let mut net = dense_net(7);
        let mut source = toy_source(70);
        let mut sgd = Sgd::constant(0.05);
        let err = trainer.train(&mut net, Strategy::adaptive(), &mut source, &mut sgd).unwrap_err();
        assert!(matches!(err, TrainError::Controller(ControllerError::NoReuseLayers)), "{err}");
    }

    #[test]
    fn cluster_reuse_strategy_turns_cr_off_on_plateau() {
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 200,
            plateau_patience: 3,
            plateau_min_delta: 0.02,
            ..quick_config()
        });
        let mut net = reuse_net(4);
        let mut source = toy_source(40);
        let mut sgd = Sgd::constant(0.05);
        let report =
            trainer.train(&mut net, Strategy::cluster_reuse(3, 6), &mut source, &mut sgd).unwrap();
        let cr_switches: Vec<_> = report
            .switches
            .iter()
            .filter(|s| s.description.contains("cluster reuse off"))
            .collect();
        assert_eq!(cr_switches.len(), 1, "CR must switch off exactly once");
    }

    #[test]
    fn target_accuracy_stops_early() {
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 2000,
            target_accuracy: Some(0.8),
            ..quick_config()
        });
        let mut net = dense_net(5);
        let mut source = toy_source(50);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::baseline(), &mut source, &mut sgd).unwrap();
        assert!(report.iterations_to_target.is_some());
        assert!(report.iterations_run < 2000);
    }

    #[test]
    fn histories_are_sampled() {
        let trainer = Trainer::new(quick_config());
        let mut net = dense_net(6);
        let mut source = toy_source(60);
        let mut sgd = Sgd::constant(0.05);
        let report = trainer.train(&mut net, Strategy::baseline(), &mut source, &mut sgd).unwrap();
        assert!(!report.loss_history.is_empty());
        assert!(!report.accuracy_history.is_empty());
        assert!(report.loss_history.len() <= 256 + 1);
    }

    #[test]
    fn halt_after_interrupts_and_resume_matches_uninterrupted() {
        let cfg = TrainerConfig { max_iterations: 40, ..quick_config() };
        let trainer = Trainer::new(cfg);
        let mut sgd_a = Sgd::constant(0.05);
        let mut net_a = dense_net(8);
        let mut source_a = toy_source(80);
        let full =
            trainer.train(&mut net_a, Strategy::baseline(), &mut source_a, &mut sgd_a).unwrap();

        // Interrupted twin: halt at 20, capture, resume to the end.
        let mut sgd_b = Sgd::constant(0.05);
        let mut net_b = dense_net(8);
        let mut source_b = toy_source(80);
        let dir = std::env::temp_dir().join("adr_trainer_halt_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.bin");
        let first = trainer
            .train_with(
                &mut net_b,
                Strategy::baseline(),
                &mut source_b,
                &mut sgd_b,
                TrainOptions {
                    checkpoint: Some(CheckpointPolicy::new(&ckpt, 10)),
                    halt_after: Some(20),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(first.interrupted);
        assert_eq!(first.iterations_run, 20);

        // Fresh process simulation: new net/sgd, state from disk.
        let state = TrainState::load(&ckpt).unwrap();
        assert_eq!(state.iteration, 20);
        let mut sgd_c = Sgd::constant(0.05);
        let mut net_c = dense_net(8);
        let mut source_c = toy_source(80);
        let resumed = trainer
            .train_with(
                &mut net_c,
                Strategy::baseline(),
                &mut source_c,
                &mut sgd_c,
                TrainOptions { resume: Some(state), ..Default::default() },
            )
            .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.iterations_run, full.iterations_run);

        // Bitwise-identical weights and FLOP counters.
        let w_full = TrainState::capture(&mut net_a, &sgd_a, Strategy::baseline(), 40);
        let w_res = TrainState::capture(&mut net_c, &sgd_c, Strategy::baseline(), 40);
        assert_eq!(w_full.params, w_res.params);
        assert_eq!(w_full.velocity, w_res.velocity);
        assert_eq!(w_full.flops, w_res.flops);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_wrong_strategy() {
        let trainer = Trainer::new(quick_config());
        let mut net = dense_net(9);
        let mut sgd = Sgd::constant(0.05);
        let state = TrainState::capture(&mut net, &sgd, Strategy::fixed(3, 6), 10);
        let mut source = toy_source(90);
        let err = trainer
            .train_with(
                &mut net,
                Strategy::baseline(),
                &mut source,
                &mut sgd,
                TrainOptions { resume: Some(state), ..Default::default() },
            )
            .unwrap_err();
        assert!(matches!(err, TrainError::Resume(StateError::StrategyMismatch { .. })), "{err}");
    }

    // Under `--features checked` the invariant layer panics on the injected
    // NaN before the guardrail can see it; the rollback path is exercised
    // in the default configuration.
    #[cfg(not(feature = "checked"))]
    #[test]
    fn guardrail_rolls_back_and_tightens_on_injected_nan() {
        let trainer = Trainer::new(TrainerConfig { max_iterations: 60, ..quick_config() });
        let mut net = reuse_net(11);
        let mut source = toy_source(110);
        let mut sgd = Sgd::constant(0.05);
        let mut plan = FaultPlan::new().inject_at(30, FaultKind::NanWeights);
        let report = trainer
            .train_with(
                &mut net,
                Strategy::fixed(3, 6),
                &mut source,
                &mut sgd,
                TrainOptions {
                    guardrails: Some(crate::guardrails::GuardrailConfig {
                        snapshot_every: 10,
                        ..Default::default()
                    }),
                    faults: Some(&mut plan),
                    ..Default::default()
                },
            )
            .unwrap();
        let kinds: Vec<_> = report.guardrail_events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&GuardrailEventKind::FaultInjected), "{kinds:?}");
        assert!(kinds.contains(&GuardrailEventKind::NonFiniteParams), "{kinds:?}");
        assert!(kinds.contains(&GuardrailEventKind::RolledBack), "{kinds:?}");
        assert!(
            kinds.contains(&GuardrailEventKind::ExactFallback),
            "fixed strategy has no controller; tightening must land on exact fallback: {kinds:?}"
        );
        // The run recovered: weights are finite and the model still learned.
        let recaptured = TrainState::capture(&mut net, &sgd, Strategy::fixed(3, 6), 0);
        assert!(recaptured.params.iter().flatten().all(|v| v.is_finite()));
        assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
    }
}
