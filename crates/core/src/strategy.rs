//! The training strategies compared in Table IV.

/// Which of the paper's strategies (plus the dense baseline) a training run
/// uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StrategyKind {
    /// Dense convolution everywhere; no clustering (the paper's reference
    /// TensorFlow training).
    Baseline,
    /// Strategy 1 (§VI-B2): one manually tuned `{L, H}` held for the whole
    /// run, `CR = 0`.
    FixedLh {
        /// Sub-vector length (clamped per layer to its `K`).
        l: usize,
        /// Hash count.
        h: usize,
    },
    /// Strategy 2 (§V-A): the adaptive controller walks each layer's
    /// Policy-3 candidate list, switching on loss plateaus.
    AdaptiveLh,
    /// Strategy 3 (§V-B): fixed `{L, H}` with cluster reuse on; when the
    /// loss stops dropping, `CR` is switched off and training continues.
    ClusterReuseSchedule {
        /// Sub-vector length (clamped per layer).
        l: usize,
        /// Hash count.
        h: usize,
    },
}

/// A named strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Strategy {
    /// The behaviour.
    pub kind: StrategyKind,
}

impl Strategy {
    /// Dense baseline.
    pub fn baseline() -> Self {
        Self { kind: StrategyKind::Baseline }
    }

    /// Strategy 1 with fixed `{L, H}`.
    pub fn fixed(l: usize, h: usize) -> Self {
        Self { kind: StrategyKind::FixedLh { l, h } }
    }

    /// Strategy 2 (adaptive `{L, H}`).
    pub fn adaptive() -> Self {
        Self { kind: StrategyKind::AdaptiveLh }
    }

    /// Strategy 3 (cluster-reuse on→off schedule).
    pub fn cluster_reuse(l: usize, h: usize) -> Self {
        Self { kind: StrategyKind::ClusterReuseSchedule { l, h } }
    }

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self.kind {
            StrategyKind::Baseline => "baseline",
            StrategyKind::FixedLh { .. } => "strategy1-fixed",
            StrategyKind::AdaptiveLh => "strategy2-adaptive",
            StrategyKind::ClusterReuseSchedule { .. } => "strategy3-cluster-reuse",
        }
    }

    /// Whether the network should be built with reuse convolutions.
    pub fn uses_reuse(&self) -> bool {
        !matches!(self.kind, StrategyKind::Baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names = [
            Strategy::baseline().name(),
            Strategy::fixed(5, 10).name(),
            Strategy::adaptive().name(),
            Strategy::cluster_reuse(5, 10).name(),
        ];
        let mut uniq = names.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }

    #[test]
    fn reuse_flag_matches_kind() {
        assert!(!Strategy::baseline().uses_reuse());
        assert!(Strategy::fixed(5, 10).uses_reuse());
        assert!(Strategy::adaptive().uses_reuse());
        assert!(Strategy::cluster_reuse(5, 10).uses_reuse());
    }
}
