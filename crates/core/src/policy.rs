//! Parameter-range policies (§V-A(a)).
//!
//! * **Policy 1**: per layer, `Lmin = kw` and `Lmax = ⌈√Ic⌉·kw`.
//! * **Amendment 1**: for layers other than the first, when the kernel is
//!   very small (`kw·kw < 10`), raise `Lmin` to `kw·kw`.
//! * **Policy 2**: from the observation `r_c > 0.01`, pick the smallest
//!   `Hmin` with `2^Hmin > 0.01·N` and the largest `Hmax` with `2^Hmax < N`.

/// Admissible sub-vector lengths for one convolutional layer, ordered from
/// most aggressive (`Lmax`, coarse clustering) to most precise (`Lmin`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LRange {
    l_min: usize,
    l_max: usize,
    /// Descending candidate values, multiples of `kw` (natural kernel-row
    /// boundaries in the im2col layout).
    values: Vec<usize>,
}

impl LRange {
    /// Derives the range from layer geometry per Policy 1 / Amendment 1.
    ///
    /// * `kernel_w` — kernel width `kw`.
    /// * `in_channels` — input channel count `Ic`.
    /// * `first_layer` — whether this is the first convolutional layer
    ///   (Amendment 1 does not apply there).
    ///
    /// # Panics
    /// Panics if `kernel_w == 0 || in_channels == 0`.
    pub fn from_geometry(kernel_w: usize, in_channels: usize, first_layer: bool) -> Self {
        assert!(kernel_w > 0 && in_channels > 0, "degenerate layer geometry");
        let mut l_min = kernel_w;
        if !first_layer && kernel_w * kernel_w < 10 {
            l_min = kernel_w * kernel_w; // Amendment 1
        }
        // ceil() of a small positive sqrt; the cast back to usize is exact.
        #[allow(clippy::cast_possible_truncation)]
        let mut l_max = (in_channels as f64).sqrt().ceil() as usize * kernel_w;
        if l_max < l_min {
            l_max = l_min;
        }
        // Candidate granularities: roughly-halving multiples of kw inside
        // [Lmin, Lmax], descending, always containing both endpoints.
        // Halving keeps the schedule short (each L step already changes the
        // expected cost by ~2x, Eq. 22) instead of crawling one kernel-row
        // at a time.
        let mut values: Vec<usize> = Vec::new();
        let mut v = l_max;
        while v > l_min {
            values.push(v);
            // Halve, snapped down to a multiple of kw, floored at Lmin.
            let half = ((v / 2) / kernel_w) * kernel_w;
            v = half.clamp(l_min, v - 1);
        }
        values.push(l_min);
        Self { l_min, l_max, values }
    }

    /// Smallest admissible `L`.
    pub fn min(&self) -> usize {
        self.l_min
    }

    /// Largest admissible `L`.
    pub fn max(&self) -> usize {
        self.l_max
    }

    /// Descending candidate values (`Lmax` first).
    pub fn values(&self) -> &[usize] {
        &self.values
    }
}

/// Admissible hash counts for one layer, ordered ascending (few hashes =
/// aggressive reuse first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HRange {
    h_min: usize,
    h_max: usize,
    values: Vec<usize>,
}

impl HRange {
    /// Derives the range from the unfolded row count `N` per Policy 2,
    /// clamped to the `1..=64` signature width and sub-sampled to at most
    /// `max_values` candidates.
    ///
    /// # Panics
    /// Panics if `n < 2` or `max_values == 0`.
    pub fn from_rows(n: usize, max_values: usize) -> Self {
        assert!(n >= 2, "need at least two rows to cluster");
        assert!(max_values > 0, "max_values must be positive");
        // Smallest H with 2^H > 0.01·N.
        let mut h_min = 1usize;
        while (1u128 << h_min) as f64 <= 0.01 * n as f64 && h_min < 64 {
            h_min += 1;
        }
        // Largest H with 2^H < N.
        let mut h_max = h_min;
        while h_max < 64 && (1u128 << (h_max + 1)) < n as u128 {
            h_max += 1;
        }
        let h_max = h_max.clamp(h_min, 64);
        // Ascending values, endpoints always included.
        let span = h_max - h_min;
        let steps = span.min(max_values.saturating_sub(1));
        let mut values: Vec<usize> = if steps == 0 {
            vec![h_min]
        } else {
            (0..=steps).map(|i| h_min + (i * span) / steps).collect()
        };
        values.dedup();
        Self { h_min, h_max, values }
    }

    /// Smallest admissible `H`.
    pub fn min(&self) -> usize {
        self.h_min
    }

    /// Largest admissible `H`.
    pub fn max(&self) -> usize {
        self.h_max
    }

    /// Ascending candidate values (`Hmin` first).
    pub fn values(&self) -> &[usize] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifarnet_conv1_range_matches_paper() {
        // kw = 5, Ic = 3, first layer: Lmin = 5, Lmax = ⌈√3⌉·5 = 10.
        let r = LRange::from_geometry(5, 3, true);
        assert_eq!(r.min(), 5);
        assert_eq!(r.max(), 10);
        assert_eq!(r.values(), &[10, 5]);
    }

    #[test]
    fn cifarnet_conv2_range_matches_paper() {
        // kw = 5, Ic = 64, hidden layer: kw² = 25 ≥ 10 so Amendment 1 is
        // inactive; Lmin = 5, Lmax = 8·5 = 40.
        let r = LRange::from_geometry(5, 64, false);
        assert_eq!(r.min(), 5);
        assert_eq!(r.max(), 40);
        assert!(r.values().windows(2).all(|w| w[0] > w[1]), "descending");
        assert!(r.values().iter().all(|&v| v % 5 == 0));
    }

    #[test]
    fn amendment_1_raises_lmin_for_small_hidden_kernels() {
        // VGG-style 3x3 hidden layer: kw·kw = 9 < 10 → Lmin = 9.
        let r = LRange::from_geometry(3, 64, false);
        assert_eq!(r.min(), 9);
        // First layer keeps Lmin = kw even for 3x3.
        let first = LRange::from_geometry(3, 3, true);
        assert_eq!(first.min(), 3);
    }

    #[test]
    fn degenerate_single_channel_layer_collapses_range() {
        let r = LRange::from_geometry(3, 1, false);
        // Lmin = 9 (Amendment 1) > Lmax = 3 → clamped to a single value.
        assert_eq!(r.min(), 9);
        assert_eq!(r.max(), 9);
        assert_eq!(r.values(), &[9]);
    }

    #[test]
    fn h_range_matches_paper_for_cifarnet_conv1() {
        // N = 64·28·28 = 50176. 0.01·N ≈ 502 → Hmin = 9 (2⁹ = 512).
        // Largest H with 2^H < N: 2¹⁵ = 32768 < 50176 < 65536 → Hmax = 15.
        let r = HRange::from_rows(64 * 28 * 28, 32);
        assert_eq!(r.min(), 9);
        assert_eq!(r.max(), 15);
        assert_eq!(r.values(), &[9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn h_range_subsamples_to_max_values() {
        let r = HRange::from_rows(1 << 20, 4);
        assert_eq!(r.values().len(), 4);
        assert_eq!(*r.values().first().unwrap(), r.min());
        assert_eq!(*r.values().last().unwrap(), r.max());
        assert!(r.values().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn h_range_handles_tiny_n() {
        let r = HRange::from_rows(4, 8);
        assert!(r.min() >= 1);
        assert!(r.max() <= 64);
        assert!(!r.values().is_empty());
    }

    #[test]
    fn h_range_never_exceeds_signature_width() {
        let r = HRange::from_rows(usize::MAX / 2, 100);
        assert!(r.max() <= 64);
    }
}
