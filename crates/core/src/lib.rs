//! Adaptive deep reuse — the paper's contribution (§V).
//!
//! Different CNN training stages tolerate different amounts of precision
//! relaxation: a rough early model barely notices clustering error, while a
//! nearly-converged model is derailed by it. This crate turns that insight
//! into machinery:
//!
//! * [`policy`] — Policies 1 and 2 (plus Amendment 1) derive each layer's
//!   admissible ranges of sub-vector length `L` and hash count `H` from its
//!   geometry (`kw`, `Ic`) and unfolded row count `N`.
//! * [`candidates`] — Policy 3 merges the descending `[L]` list and the
//!   ascending `[H]` list into one ordered candidate schedule, always
//!   stepping in the direction of smaller expected-time increase
//!   (Eqs. 22/23).
//! * [`controller`] — the runtime: watches the training loss; when it
//!   plateaus, probes the next candidates on a held-out batch and accepts
//!   per Amendments 3.1–3.3.
//! * [`strategy`] — the three training strategies compared in Table IV:
//!   fixed `{L, H}` (Strategy 1), adaptive `{L, H}` (Strategy 2), and the
//!   cluster-reuse on→off schedule (Strategy 3), plus the dense baseline.
//! * [`trainer`] — the training loop wiring strategies into an
//!   `adr_nn::Network`, with FLOP/time/iteration accounting.
//! * [`report`] — the per-run summary used to regenerate Table IV.
//! * [`state`] — full-run snapshots (`TrainState`): crash-safe persistence
//!   of parameters, momentum, controller cursors, FLOP totals and the
//!   batch-source position, enabling bitwise-identical resume.
//! * [`guardrails`] — runtime health checks (non-finite loss/params, loss
//!   spikes, degenerate clusterings) with rollback + stage tightening.
//! * [`faults`] — a deterministic fault-injection harness for testing the
//!   two modules above, plus serving-side injection points (slow batches,
//!   poisoned outputs, corrupt checkpoint loads) for `adr_serve`.

#![warn(missing_docs)]
// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod candidates;
pub mod controller;
pub mod faults;
pub mod guardrails;
pub mod policy;
pub mod report;
pub mod state;
pub mod strategy;
pub mod trainer;

pub use candidates::CandidateList;
pub use controller::{AdaptiveController, ControllerError, ControllerState};
pub use faults::{FaultKind, FaultPlan, ServeFaultKind, ServeFaultPlan};
pub use guardrails::{Guardrail, GuardrailConfig, GuardrailEvent, GuardrailEventKind};
pub use policy::{HRange, LRange};
pub use report::TrainReport;
pub use state::{StateError, TrainState};
pub use strategy::{Strategy, StrategyKind};
pub use trainer::{
    BatchSource, CheckpointPolicy, FnBatchSource, TrainError, TrainOptions, Trainer, TrainerConfig,
};
