//! Per-run training summaries — the raw material of Table IV.

use std::time::Duration;

use adr_nn::flops::FlopReport;

use crate::guardrails::GuardrailEvent;

/// A parameter-switch event during an adaptive run.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchEvent {
    /// Training iteration at which the switch happened.
    pub iteration: usize,
    /// Human-readable description (`"stage 3"`, `"CR off"`, ...).
    pub description: String,
}

/// Everything a training run reports.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Strategy name.
    pub strategy: String,
    /// Iterations actually executed.
    pub iterations_run: usize,
    /// First iteration at which the target accuracy was reached, if it was.
    pub iterations_to_target: Option<usize>,
    /// Loss on the probe batch after training.
    pub final_loss: f32,
    /// Accuracy on the probe batch after training.
    pub final_accuracy: f32,
    /// Multiply–adds actually performed by the network.
    pub actual_flops: FlopReport,
    /// Multiply–adds a dense network would have performed for the same
    /// passes.
    pub baseline_flops: FlopReport,
    /// Wall-clock training time.
    pub wall_time: Duration,
    /// Parameter switches (empty for baseline/fixed runs).
    pub switches: Vec<SwitchEvent>,
    /// Sampled `(iteration, loss)` history.
    pub loss_history: Vec<(usize, f32)>,
    /// Sampled `(iteration, probe accuracy)` history.
    pub accuracy_history: Vec<(usize, f32)>,
    /// Guardrail detections and reactions, in occurrence order (empty when
    /// guardrails were not armed or nothing went wrong).
    pub guardrail_events: Vec<GuardrailEvent>,
    /// True when the run stopped at `halt_after` rather than finishing —
    /// the kill-and-resume harness's signal that a resume is expected.
    pub interrupted: bool,
}

impl TrainReport {
    /// Fraction of baseline multiply–adds avoided, in `[-∞, 1]`.
    pub fn flop_savings(&self) -> f64 {
        let base = self.baseline_flops.total();
        if base == 0 {
            return 0.0;
        }
        1.0 - self.actual_flops.total() as f64 / base as f64
    }

    /// Training-time saving versus a reference wall time (the baseline
    /// run's), as the paper reports it: `1 − t/t_ref`.
    pub fn time_savings_vs(&self, reference: Duration) -> f64 {
        if reference.is_zero() {
            return 0.0;
        }
        1.0 - self.wall_time.as_secs_f64() / reference.as_secs_f64()
    }

    /// One markdown table row: name, iterations, accuracy, savings, time.
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} | {:.3} | {:.1}% | {:.2}s |",
            self.strategy,
            self.iterations_run,
            self.iterations_to_target.map_or_else(|| "-".to_string(), |i| i.to_string()),
            self.final_accuracy,
            self.flop_savings() * 100.0,
            self.wall_time.as_secs_f64(),
        )
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "strategy {}: {} iterations, final accuracy {:.3}, loss {:.4}\n  \
             flops {} vs dense {} ({:.1}% saved), wall time {:.2}s",
            self.strategy,
            self.iterations_run,
            self.final_accuracy,
            self.final_loss,
            self.actual_flops.total(),
            self.baseline_flops.total(),
            self.flop_savings() * 100.0,
            self.wall_time.as_secs_f64(),
        );
        if let Some(i) = self.iterations_to_target {
            s.push_str(&format!("\n  target accuracy reached at iteration {i}"));
        }
        for sw in &self.switches {
            s.push_str(&format!("\n  switch @ {}: {}", sw.iteration, sw.description));
        }
        for ev in &self.guardrail_events {
            s.push_str(&format!("\n  guardrail @ {}: {:?} — {}", ev.iteration, ev.kind, ev.detail));
        }
        if self.interrupted {
            s.push_str("\n  run interrupted (resumable from its last checkpoint)");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TrainReport {
        TrainReport {
            strategy: "test".into(),
            iterations_run: 100,
            iterations_to_target: Some(80),
            final_loss: 0.5,
            final_accuracy: 0.9,
            actual_flops: FlopReport { forward: 30, backward: 20 },
            baseline_flops: FlopReport { forward: 60, backward: 40 },
            wall_time: Duration::from_secs(5),
            switches: vec![SwitchEvent { iteration: 10, description: "stage 1".into() }],
            loss_history: vec![(0, 2.0), (99, 0.5)],
            accuracy_history: vec![(0, 0.1), (99, 0.9)],
            guardrail_events: vec![GuardrailEvent {
                iteration: 42,
                kind: crate::guardrails::GuardrailEventKind::RolledBack,
                detail: "restored snapshot @ 25".into(),
            }],
            interrupted: false,
        }
    }

    #[test]
    fn flop_savings_computation() {
        assert!((report().flop_savings() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_savings_vs_reference() {
        let r = report();
        assert!((r.time_savings_vs(Duration::from_secs(10)) - 0.5).abs() < 1e-12);
        assert_eq!(r.time_savings_vs(Duration::ZERO), 0.0);
    }

    #[test]
    fn markdown_row_contains_key_fields() {
        let row = report().markdown_row();
        assert!(row.contains("test"));
        assert!(row.contains("80"));
        assert!(row.contains("50.0%"));
    }

    #[test]
    fn summary_mentions_switches_and_target() {
        let s = report().summary();
        assert!(s.contains("switch @ 10"));
        assert!(s.contains("iteration 80"));
        assert!(s.contains("guardrail @ 42"));
    }
}
