//! Full-training-state snapshots — the unit of crash recovery.
//!
//! A parameter checkpoint (`adr_nn::checkpoint`) is enough to *reuse* a
//! model but not to *resume* a run: bitwise-identical continuation also
//! needs the optimiser's momentum buffers and step counter, the adaptive
//! controller's stage cursor and plateau window, the epoch meter, the FLOP
//! totals, and the batch source's position. [`TrainState`] captures all of
//! it, and its on-disk format follows the same fail-closed discipline as
//! the parameter checkpoint: magic + version, fixed-order tagged sections
//! each protected by its own CRC32, writes through the atomic-rename
//! protocol in [`adr_nn::durable`], and a two-phase restore that validates
//! every length before mutating anything.
//!
//! Known non-goals (documented, deliberate): dropout RNG streams and the
//! across-batch cluster-reuse caches (`CR = 1`) are *not* captured — both
//! are transient acceleration state whose loss changes timing, not
//! correctness, and the kill-and-resume determinism guarantee is stated
//! for `CR = 0` strategies.

use std::fmt;
use std::io;
use std::path::Path;

use adr_nn::durable::{self, IoFault, RetryPolicy};
use adr_nn::flops::FlopReport;
use adr_nn::metrics::{EpochMeterState, PlateauState};
use adr_nn::{Network, Sgd};

use crate::controller::ControllerState;
use crate::strategy::{Strategy, StrategyKind};

const MAGIC: &[u8; 4] = b"ADRS";
const VERSION: u32 = 1;

/// Why a training-state snapshot could not be decoded or restored.
#[derive(Debug)]
pub enum StateError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the `ADRS` magic.
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The byte stream ended inside the named structure.
    Truncated(&'static str),
    /// A section arrived out of order or with an unknown tag.
    SectionTagMismatch {
        /// Tag the fixed layout expects at this position.
        expected: &'static str,
        /// Tag found in the file.
        found: [u8; 4],
    },
    /// A section's stored CRC32 disagrees with its payload: corruption.
    ChecksumMismatch {
        /// Which section failed.
        section: &'static str,
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// A recorded length does not fit in memory on this platform.
    SectionOverflow,
    /// Extra bytes follow a structurally complete snapshot.
    TrailingBytes,
    /// A section decoded but its contents are internally inconsistent.
    Malformed(&'static str),
    /// The snapshot and the network disagree on a buffer count.
    SlotCountMismatch {
        /// Which section disagrees (`"params"`, `"velocity"`, `"state"`).
        section: &'static str,
        /// Buffers in the snapshot.
        expected: usize,
        /// Buffers in the target network.
        found: usize,
    },
    /// One buffer has the wrong length (different layer shape).
    SlotLenMismatch {
        /// Which section disagrees.
        section: &'static str,
        /// Buffer index in capture order.
        index: usize,
        /// Values in the snapshot buffer.
        expected: usize,
        /// Values the network expects.
        found: usize,
    },
    /// The snapshot's per-layer FLOP list does not match the network.
    LayerCountMismatch {
        /// Layers in the snapshot.
        expected: usize,
        /// Layers in the target network.
        found: usize,
    },
    /// The snapshot was captured under a different training strategy.
    StrategyMismatch {
        /// Strategy the resuming run is using.
        expected: String,
        /// Strategy recorded in the snapshot.
        found: String,
    },
    /// The batch source rejected its recorded cursor state.
    SourceState(String),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "train-state I/O failed: {e}"),
            Self::BadMagic => write!(f, "not an ADR train-state file (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported train-state version {v}"),
            Self::Truncated(what) => write!(f, "train state truncated inside {what}"),
            Self::SectionTagMismatch { expected, found } => write!(
                f,
                "expected section {expected:?}, found {:?}",
                String::from_utf8_lossy(found)
            ),
            Self::ChecksumMismatch { section, expected, actual } => write!(
                f,
                "section {section} checksum mismatch (recorded {expected:#010x}, \
                 computed {actual:#010x})"
            ),
            Self::SectionOverflow => write!(f, "train-state section length overflows usize"),
            Self::TrailingBytes => write!(f, "trailing bytes after train-state payload"),
            Self::Malformed(what) => write!(f, "malformed train-state section: {what}"),
            Self::SlotCountMismatch { section, expected, found } => {
                write!(f, "train state has {expected} {section} buffers, network has {found}")
            }
            Self::SlotLenMismatch { section, index, expected, found } => write!(
                f,
                "{section} buffer {index}: snapshot holds {expected} values, network \
                 expects {found}"
            ),
            Self::LayerCountMismatch { expected, found } => {
                write!(f, "train state covers {expected} layers, network has {found}")
            }
            Self::StrategyMismatch { expected, found } => write!(
                f,
                "train state was captured under strategy {found}, resuming run uses {expected}"
            ),
            Self::SourceState(e) => write!(f, "batch source rejected its recorded state: {e}"),
        }
    }
}

impl std::error::Error for StateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StateError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Cumulative FLOP totals of one layer at capture time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerFlopState {
    /// Multiply–adds the layer actually performed.
    pub actual: FlopReport,
    /// Multiply–adds a dense implementation would have performed.
    pub baseline: FlopReport,
}

/// Everything a training run needs to continue bitwise-identically after a
/// crash: model parameters and layer state, SGD momentum and step counter,
/// controller/plateau cursors, the epoch meter, per-layer FLOP totals, and
/// the batch source's opaque cursor.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainState {
    /// Next training iteration to run (iterations completed so far).
    pub iteration: usize,
    /// Optimiser step counter (drives the learning-rate schedule).
    pub sgd_step: usize,
    /// Strategy the run was using; resume refuses a different one.
    pub strategy: StrategyKind,
    /// Learnable parameters, one slot per `ParamRefMut` in layer order.
    pub params: Vec<Vec<f32>>,
    /// SGD momentum buffers, parallel to `params`.
    pub velocity: Vec<Vec<f32>>,
    /// Non-learnable layer state (batch-norm running statistics, ...).
    pub state_bufs: Vec<Vec<f32>>,
    /// Cumulative FLOP totals, one entry per layer.
    pub flops: Vec<LayerFlopState>,
    /// Adaptive-controller cursor (Strategy 2 runs only).
    pub controller: Option<ControllerState>,
    /// Strategy 3's CR plateau-detector window, when one exists.
    pub cr_plateau: Option<PlateauState>,
    /// Strategy 3's CR flag at capture time.
    pub cr_active: Option<bool>,
    /// Running epoch meter (smoothed training accuracy feeds Amendment
    /// rule selection, so it must survive a restart).
    pub meter: EpochMeterState,
    /// Opaque batch-source cursor from `BatchSource::snapshot_state`.
    pub source_state: Vec<u64>,
}

impl TrainState {
    /// Captures the model-side state (parameters, velocity, layer state,
    /// FLOP totals, SGD step) of `net`. The trainer fills in the
    /// loop-side fields (`controller`, `cr_plateau`, `cr_active`, `meter`,
    /// `source_state`) before persisting.
    pub fn capture(net: &mut Network, sgd: &Sgd, strategy: Strategy, iteration: usize) -> Self {
        let mut params = Vec::new();
        let mut velocity = Vec::new();
        for layer in net.layers_mut() {
            for p in layer.params_mut() {
                params.push(p.data.to_vec());
                velocity.push(p.velocity.to_vec());
            }
        }
        let state_bufs = net
            .layers_mut()
            .iter_mut()
            .flat_map(|l| l.state_buffers())
            .map(|s| s.to_vec())
            .collect();
        let flops = net
            .layers()
            .iter()
            .map(|l| LayerFlopState { actual: l.flops(), baseline: l.baseline_flops() })
            .collect();
        Self {
            iteration,
            sgd_step: sgd.step_count(),
            strategy: strategy.kind,
            params,
            velocity,
            state_bufs,
            flops,
            controller: None,
            cr_plateau: None,
            cr_active: None,
            meter: EpochMeterState::default(),
            source_state: Vec::new(),
        }
    }

    /// Checks that the snapshot was captured under `strategy`.
    ///
    /// # Errors
    /// Returns [`StateError::StrategyMismatch`] otherwise — resuming a
    /// fixed-`{L, H}` snapshot under the adaptive schedule (or vice versa)
    /// would silently train a different experiment.
    pub fn verify_strategy(&self, strategy: Strategy) -> Result<(), StateError> {
        if self.strategy == strategy.kind {
            Ok(())
        } else {
            Err(StateError::StrategyMismatch {
                expected: format!("{:?}", strategy.kind),
                found: format!("{:?}", self.strategy),
            })
        }
    }

    /// Restores parameters, momentum, layer state, FLOP totals, and the
    /// SGD step counter into `net`/`sgd`, transactionally: every buffer
    /// count and length is validated before the first write, so a
    /// mismatched snapshot never leaves the network partially restored.
    ///
    /// # Errors
    /// Returns a mismatch variant when the network's shape disagrees with
    /// the snapshot (different architecture or different reuse configs
    /// changing layer counts).
    pub fn restore_model(&self, net: &mut Network, sgd: &mut Sgd) -> Result<(), StateError> {
        if net.len() != self.flops.len() {
            return Err(StateError::LayerCountMismatch {
                expected: self.flops.len(),
                found: net.len(),
            });
        }
        if self.params.len() != self.velocity.len() {
            return Err(StateError::Malformed("params/velocity slot counts differ"));
        }
        // Phase 1: validate everything against the live network.
        {
            let slot_lens: Vec<usize> = net
                .layers_mut()
                .iter_mut()
                .flat_map(|l| l.params_mut())
                .map(|p| p.data.len())
                .collect();
            if slot_lens.len() != self.params.len() {
                return Err(StateError::SlotCountMismatch {
                    section: "params",
                    expected: self.params.len(),
                    found: slot_lens.len(),
                });
            }
            for (section, saved) in [("params", &self.params), ("velocity", &self.velocity)] {
                for (i, (&len, slot)) in slot_lens.iter().zip(saved).enumerate() {
                    if len != slot.len() {
                        return Err(StateError::SlotLenMismatch {
                            section,
                            index: i,
                            expected: slot.len(),
                            found: len,
                        });
                    }
                }
            }
            let state_lens: Vec<usize> = net
                .layers_mut()
                .iter_mut()
                .flat_map(|l| l.state_buffers())
                .map(|s| s.len())
                .collect();
            if state_lens.len() != self.state_bufs.len() {
                return Err(StateError::SlotCountMismatch {
                    section: "state",
                    expected: self.state_bufs.len(),
                    found: state_lens.len(),
                });
            }
            for (i, (&len, slot)) in state_lens.iter().zip(&self.state_bufs).enumerate() {
                if len != slot.len() {
                    return Err(StateError::SlotLenMismatch {
                        section: "state",
                        index: i,
                        expected: slot.len(),
                        found: len,
                    });
                }
            }
        }
        // Phase 2: write.
        let mut slot = 0;
        for layer in net.layers_mut() {
            for p in layer.params_mut() {
                p.data.copy_from_slice(&self.params[slot]);
                p.velocity.copy_from_slice(&self.velocity[slot]);
                slot += 1;
            }
        }
        let mut state: Vec<_> =
            net.layers_mut().iter_mut().flat_map(|l| l.state_buffers()).collect();
        for (s, saved) in state.iter_mut().zip(&self.state_bufs) {
            s.copy_from_slice(saved);
        }
        drop(state);
        for (layer, f) in net.layers_mut().iter_mut().zip(&self.flops) {
            layer.restore_flops(f.actual, f.baseline);
        }
        sgd.set_step_count(self.sgd_step);
        Ok(())
    }

    /// Serialises to the on-disk layout: magic, version, then nine tagged
    /// sections in fixed order, each carrying its own payload CRC32.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());

        let mut meta = Vec::new();
        meta.extend_from_slice(&(self.iteration as u64).to_le_bytes());
        meta.extend_from_slice(&(self.sgd_step as u64).to_le_bytes());
        let (kind, l, h) = strategy_tag(self.strategy);
        meta.push(kind);
        meta.extend_from_slice(&l.to_le_bytes());
        meta.extend_from_slice(&h.to_le_bytes());
        meta.push(match self.cr_active {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        push_section(&mut buf, b"META", &meta);

        push_section(&mut buf, b"PRMS", &encode_f32_slots(&self.params));
        push_section(&mut buf, b"VELO", &encode_f32_slots(&self.velocity));
        push_section(&mut buf, b"STAT", &encode_f32_slots(&self.state_bufs));

        let mut flop = Vec::new();
        flop.extend_from_slice(&(self.flops.len() as u64).to_le_bytes());
        for f in &self.flops {
            for v in [f.actual.forward, f.actual.backward, f.baseline.forward, f.baseline.backward]
            {
                flop.extend_from_slice(&v.to_le_bytes());
            }
        }
        push_section(&mut buf, b"FLOP", &flop);

        let mut ctrl = Vec::new();
        match &self.controller {
            None => ctrl.push(0),
            Some(c) => {
                ctrl.push(1);
                ctrl.extend_from_slice(&(c.stage as u64).to_le_bytes());
                push_plateau(&mut ctrl, &c.plateau);
            }
        }
        push_section(&mut buf, b"CTRL", &ctrl);

        let mut crpl = Vec::new();
        match &self.cr_plateau {
            None => crpl.push(0),
            Some(p) => {
                crpl.push(1);
                push_plateau(&mut crpl, p);
            }
        }
        push_section(&mut buf, b"CRPL", &crpl);

        let mut epoc = Vec::new();
        epoc.extend_from_slice(&self.meter.loss_sum.to_le_bytes());
        epoc.extend_from_slice(&(self.meter.hits as u64).to_le_bytes());
        epoc.extend_from_slice(&(self.meter.examples as u64).to_le_bytes());
        epoc.extend_from_slice(&(self.meter.batches as u64).to_le_bytes());
        push_section(&mut buf, b"EPOC", &epoc);

        let mut srcs = Vec::new();
        srcs.extend_from_slice(&(self.source_state.len() as u64).to_le_bytes());
        for w in &self.source_state {
            srcs.extend_from_slice(&w.to_le_bytes());
        }
        push_section(&mut buf, b"SRCS", &srcs);

        buf
    }

    /// Deserialises the layout produced by [`TrainState::to_bytes`].
    ///
    /// # Errors
    /// Fails closed on bad magic, unsupported versions, truncation,
    /// out-of-order sections, per-section checksum mismatches, and
    /// trailing garbage — nothing is partially decoded.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StateError> {
        if bytes.len() < 4 {
            return Err(StateError::Truncated("magic"));
        }
        if &bytes[..4] != MAGIC {
            return Err(StateError::BadMagic);
        }
        if bytes.len() < 8 {
            return Err(StateError::Truncated("header"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(StateError::UnsupportedVersion(version));
        }
        let mut sections = SectionReader { bytes, pos: 8 };

        let meta = sections.section(b"META", "META")?;
        let mut f = Fields::new(meta, "META");
        let iteration = f.length()?;
        let sgd_step = f.length()?;
        let kind = f.u8()?;
        let l = f.u64()?;
        let h = f.u64()?;
        let strategy = strategy_from_tag(kind, l, h)?;
        let cr_active = match f.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(StateError::Malformed("META: cr_active flag")),
        };
        f.done()?;

        let params = decode_f32_slots(sections.section(b"PRMS", "PRMS")?, "PRMS")?;
        let velocity = decode_f32_slots(sections.section(b"VELO", "VELO")?, "VELO")?;
        let state_bufs = decode_f32_slots(sections.section(b"STAT", "STAT")?, "STAT")?;

        let flop_bytes = sections.section(b"FLOP", "FLOP")?;
        let mut f = Fields::new(flop_bytes, "FLOP");
        let n_layers = f.length()?;
        let mut flops = Vec::with_capacity(n_layers.min(1 << 16));
        for _ in 0..n_layers {
            let actual = FlopReport { forward: f.u64()?, backward: f.u64()? };
            let baseline = FlopReport { forward: f.u64()?, backward: f.u64()? };
            flops.push(LayerFlopState { actual, baseline });
        }
        f.done()?;

        let ctrl_bytes = sections.section(b"CTRL", "CTRL")?;
        let mut f = Fields::new(ctrl_bytes, "CTRL");
        let controller = match f.u8()? {
            0 => None,
            1 => {
                let stage = f.length()?;
                let plateau = read_plateau(&mut f)?;
                Some(ControllerState { stage, plateau })
            }
            _ => return Err(StateError::Malformed("CTRL: presence flag")),
        };
        f.done()?;

        let crpl_bytes = sections.section(b"CRPL", "CRPL")?;
        let mut f = Fields::new(crpl_bytes, "CRPL");
        let cr_plateau = match f.u8()? {
            0 => None,
            1 => Some(read_plateau(&mut f)?),
            _ => return Err(StateError::Malformed("CRPL: presence flag")),
        };
        f.done()?;

        let epoc_bytes = sections.section(b"EPOC", "EPOC")?;
        let mut f = Fields::new(epoc_bytes, "EPOC");
        let meter = EpochMeterState {
            loss_sum: f.f64()?,
            hits: f.length()?,
            examples: f.length()?,
            batches: f.length()?,
        };
        f.done()?;

        let srcs_bytes = sections.section(b"SRCS", "SRCS")?;
        let mut f = Fields::new(srcs_bytes, "SRCS");
        let n_words = f.length()?;
        let mut source_state = Vec::with_capacity(n_words.min(1 << 16));
        for _ in 0..n_words {
            source_state.push(f.u64()?);
        }
        f.done()?;

        sections.done()?;
        Ok(Self {
            iteration,
            sgd_step,
            strategy,
            params,
            velocity,
            state_bufs,
            flops,
            controller,
            cr_plateau,
            cr_active,
            meter,
            source_state,
        })
    }

    /// Saves to a file crash-safely (temp file + fsync + atomic rename).
    ///
    /// # Errors
    /// Propagates I/O errors; the destination is untouched on failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StateError> {
        durable::write_atomic(path.as_ref(), &self.to_bytes())?;
        Ok(())
    }

    /// [`TrainState::save`] with bounded retry + backoff and a fault hook
    /// (the trainer's checkpoint path, where a transient write failure
    /// must not kill the run). Returns the number of bytes written, which
    /// the trainer feeds into the `adr_train_checkpoint_bytes` counter.
    ///
    /// # Errors
    /// Returns the last I/O error when every attempt fails; the
    /// destination file keeps its previous contents in that case.
    pub fn save_with(
        &self,
        path: &Path,
        policy: RetryPolicy,
        faults: &mut dyn IoFault,
    ) -> Result<usize, StateError> {
        let bytes = self.to_bytes();
        durable::write_atomic_retry(path, &bytes, policy, faults)?;
        Ok(bytes.len())
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// Propagates I/O and format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StateError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

fn strategy_tag(kind: StrategyKind) -> (u8, u64, u64) {
    match kind {
        StrategyKind::Baseline => (0, 0, 0),
        StrategyKind::FixedLh { l, h } => (1, l as u64, h as u64),
        StrategyKind::AdaptiveLh => (2, 0, 0),
        StrategyKind::ClusterReuseSchedule { l, h } => (3, l as u64, h as u64),
    }
}

fn strategy_from_tag(kind: u8, l: u64, h: u64) -> Result<StrategyKind, StateError> {
    let l = usize::try_from(l).map_err(|_| StateError::SectionOverflow)?;
    let h = usize::try_from(h).map_err(|_| StateError::SectionOverflow)?;
    match kind {
        0 => Ok(StrategyKind::Baseline),
        1 => Ok(StrategyKind::FixedLh { l, h }),
        2 => Ok(StrategyKind::AdaptiveLh),
        3 => Ok(StrategyKind::ClusterReuseSchedule { l, h }),
        _ => Err(StateError::Malformed("META: strategy kind")),
    }
}

fn push_section(buf: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    buf.extend_from_slice(tag);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&durable::crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn encode_f32_slots(slots: &[Vec<f32>]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(slots.len() as u64).to_le_bytes());
    for slot in slots {
        buf.extend_from_slice(&(slot.len() as u64).to_le_bytes());
        for &v in slot {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

fn decode_f32_slots(bytes: &[u8], section: &'static str) -> Result<Vec<Vec<f32>>, StateError> {
    let mut f = Fields::new(bytes, section);
    let count = f.length()?;
    let mut slots = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = f.length()?;
        let nbytes = len.checked_mul(4).ok_or(StateError::SectionOverflow)?;
        let chunk = f.take(nbytes)?;
        let slot =
            chunk.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        slots.push(slot);
    }
    f.done()?;
    Ok(slots)
}

fn push_plateau(buf: &mut Vec<u8>, p: &PlateauState) {
    match p.smoothed {
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        None => {
            buf.push(0);
            buf.extend_from_slice(&0f32.to_le_bytes());
        }
    }
    buf.extend_from_slice(&p.best.to_le_bytes());
    buf.extend_from_slice(&(p.stale as u64).to_le_bytes());
    buf.extend_from_slice(&(p.seen as u64).to_le_bytes());
}

fn read_plateau(f: &mut Fields<'_>) -> Result<PlateauState, StateError> {
    let present = f.u8()?;
    let raw = f.f32()?;
    let smoothed = match present {
        0 => None,
        1 => {
            // A CRC-valid snapshot can still carry crafted bytes: a NaN
            // smoothed loss would seed the plateau/guardrail EMA and
            // permanently disarm loss comparisons. Refuse it typed.
            if !raw.is_finite() {
                return Err(StateError::Malformed("plateau smoothed loss is not finite"));
            }
            Some(raw)
        }
        _ => return Err(StateError::Malformed("plateau presence flag")),
    };
    let best = f.f32()?;
    // `+∞` is the legitimate "no best yet" sentinel; NaN and `-∞` wedge the
    // improvement test (`current < best * (1 - δ)`) forever.
    if best.is_nan() || (best.is_infinite() && best.is_sign_negative()) {
        return Err(StateError::Malformed("plateau best loss is NaN or -inf"));
    }
    Ok(PlateauState { smoothed, best, stale: f.length()?, seen: f.length()? })
}

/// Walks the fixed section layout, verifying tags and per-section CRCs.
struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn section(
        &mut self,
        tag: &'static [u8; 4],
        name: &'static str,
    ) -> Result<&'a [u8], StateError> {
        let head_end = self.pos.checked_add(16).ok_or(StateError::SectionOverflow)?;
        let head =
            self.bytes.get(self.pos..head_end).ok_or(StateError::Truncated("section header"))?;
        if &head[..4] != tag {
            return Err(StateError::SectionTagMismatch {
                expected: name,
                found: [head[0], head[1], head[2], head[3]],
            });
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&head[4..12]);
        let len = usize::try_from(u64::from_le_bytes(len_bytes))
            .map_err(|_| StateError::SectionOverflow)?;
        let expected = u32::from_le_bytes([head[12], head[13], head[14], head[15]]);
        let end = head_end.checked_add(len).ok_or(StateError::SectionOverflow)?;
        let payload = self.bytes.get(head_end..end).ok_or(StateError::Truncated(name))?;
        let actual = durable::crc32(payload);
        if expected != actual {
            return Err(StateError::ChecksumMismatch { section: name, expected, actual });
        }
        self.pos = end;
        Ok(payload)
    }

    fn done(&self) -> Result<(), StateError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StateError::TrailingBytes)
        }
    }
}

/// Bounds-checked field reader inside one verified section payload.
struct Fields<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Fields<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Self { bytes, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self.pos.checked_add(n).ok_or(StateError::SectionOverflow)?;
        let chunk = self.bytes.get(self.pos..end).ok_or(StateError::Truncated(self.section))?;
        self.pos = end;
        Ok(chunk)
    }

    fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, StateError> {
        let chunk = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        Ok(u64::from_le_bytes(buf))
    }

    /// A u64 that must fit a `usize` (counts, lengths, cursors).
    fn length(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.u64()?).map_err(|_| StateError::SectionOverflow)
    }

    fn f32(&mut self) -> Result<f32, StateError> {
        let chunk = self.take(4)?;
        Ok(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
    }

    fn f64(&mut self) -> Result<f64, StateError> {
        let chunk = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        Ok(f64::from_le_bytes(buf))
    }

    fn done(&self) -> Result<(), StateError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StateError::Malformed(self.section))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_nn::dense::Dense;
    use adr_nn::relu::Relu;
    use adr_reuse::{ReuseConfig, ReuseConv2d};
    use adr_tensor::im2col::ConvGeom;
    use adr_tensor::rng::AdrRng;
    use adr_tensor::Tensor4;

    fn net(seed: u64) -> Network {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((6, 6, 1));
        let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
        net.push(Box::new(ReuseConv2d::new(
            "conv1",
            g,
            4,
            ReuseConfig::new(3, 6, false),
            &mut rng,
        )));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(Dense::new("fc", 4 * 4 * 4, 3, &mut rng)));
        net
    }

    fn trained_state(seed: u64) -> (Network, Sgd, TrainState) {
        let mut n = net(seed);
        let mut sgd = Sgd::new(adr_nn::LrSchedule::Constant(0.05), 0.9, 0.0);
        let mut rng = AdrRng::seeded(seed + 100);
        let x = Tensor4::from_fn(4, 6, 6, 1, |_, _, _, _| rng.gauss());
        for _ in 0..3 {
            n.train_batch(&x, &[0, 1, 2, 0], &mut sgd);
        }
        let mut s = TrainState::capture(&mut n, &sgd, Strategy::fixed(3, 6), 3);
        s.meter = EpochMeterState { loss_sum: 3.5, hits: 7, examples: 12, batches: 3 };
        s.source_state = vec![1, 2, 3];
        s.cr_plateau = Some(PlateauState { smoothed: Some(1.2), best: 1.1, stale: 2, seen: 9 });
        s.controller = Some(ControllerState {
            stage: 2,
            plateau: PlateauState { smoothed: None, best: f32::INFINITY, stale: 0, seen: 0 },
        });
        s.cr_active = Some(true);
        (n, sgd, s)
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let (_, _, s) = trained_state(1);
        let bytes = s.to_bytes();
        let back = TrainState::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn restore_model_reverts_params_velocity_and_flops() {
        let (mut n, mut sgd, s) = trained_state(2);
        let flops_at_capture = n.flops();
        // Train further; everything drifts.
        let mut rng = AdrRng::seeded(999);
        let x = Tensor4::from_fn(4, 6, 6, 1, |_, _, _, _| rng.gauss());
        for _ in 0..3 {
            n.train_batch(&x, &[1, 2, 0, 1], &mut sgd);
        }
        assert_ne!(n.flops(), flops_at_capture);
        assert_ne!(TrainState::capture(&mut n, &sgd, Strategy::fixed(3, 6), 6).params, s.params);
        s.restore_model(&mut n, &mut sgd).unwrap();
        let recaptured = TrainState::capture(&mut n, &sgd, Strategy::fixed(3, 6), 3);
        assert_eq!(recaptured.params, s.params);
        assert_eq!(recaptured.velocity, s.velocity);
        assert_eq!(recaptured.flops, s.flops);
        assert_eq!(sgd.step_count(), s.sgd_step);
        assert_eq!(n.flops(), flops_at_capture);
    }

    #[test]
    fn restore_rejects_mismatched_architecture_untouched() {
        let (_, _, s) = trained_state(3);
        let mut rng = AdrRng::seeded(50);
        let mut other = Network::new((6, 6, 1));
        other.push(Box::new(Dense::new("fc", 36, 3, &mut rng)));
        let mut sgd = Sgd::constant(0.1);
        let before = TrainState::capture(&mut other, &sgd, Strategy::baseline(), 0);
        let err = s.restore_model(&mut other, &mut sgd).unwrap_err();
        assert!(matches!(err, StateError::LayerCountMismatch { expected: 3, found: 1 }), "{err}");
        let after = TrainState::capture(&mut other, &sgd, Strategy::baseline(), 0);
        assert_eq!(before.params, after.params, "failed restore must not write anything");
    }

    #[test]
    fn strategy_verification_fails_closed() {
        let (_, _, s) = trained_state(4);
        s.verify_strategy(Strategy::fixed(3, 6)).unwrap();
        let err = s.verify_strategy(Strategy::adaptive()).unwrap_err();
        assert!(matches!(err, StateError::StrategyMismatch { .. }), "{err}");
        assert!(err.to_string().contains("AdaptiveLh"), "{err}");
    }

    #[test]
    fn corrupt_bytes_fail_closed() {
        let (_, _, s) = trained_state(5);
        let bytes = s.to_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(TrainState::from_bytes(&bad).unwrap_err(), StateError::BadMagic));

        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            TrainState::from_bytes(&bad).unwrap_err(),
            StateError::UnsupportedVersion(99)
        ));

        // Truncation inside a section body.
        let bad = &bytes[..bytes.len() - 3];
        assert!(matches!(TrainState::from_bytes(bad).unwrap_err(), StateError::Truncated(_)));

        // A flipped payload bit trips that section's CRC.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            TrainState::from_bytes(&bad).unwrap_err(),
            StateError::ChecksumMismatch { .. } | StateError::SectionTagMismatch { .. }
        ));

        // Trailing garbage after a complete snapshot.
        let mut bad = bytes.clone();
        bad.extend_from_slice(b"junk");
        assert!(matches!(TrainState::from_bytes(&bad).unwrap_err(), StateError::TrailingBytes));
    }

    #[test]
    fn file_round_trip_via_atomic_save() {
        let (_, _, s) = trained_state(6);
        let path = std::env::temp_dir().join("adr_train_state_roundtrip.bin");
        s.save(&path).unwrap();
        let back = TrainState::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }
}
