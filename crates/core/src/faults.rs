//! Deterministic fault injection for training-robustness tests.
//!
//! A [`FaultPlan`] is a scripted schedule of failures — numeric poison in
//! activations or weights, degenerate LSH clusterings, checkpoint-write
//! I/O errors — that the trainer consults at the top of each iteration.
//! Faults fire *exactly once* at their scheduled iteration, so a rollback
//! that replays the same iterations sees a clean run; that one-shot
//! semantics is what lets the guardrail tests assert recovery rather than
//! an injection loop.
//!
//! Everything here is deterministic: no randomness, no clocks. The same
//! plan against the same seeds produces the same failure at the same
//! iteration on every run.

use std::io;

use adr_nn::durable::IoFault;
use adr_reuse::DegenerateClustering;

/// One kind of injectable failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrites one activation value of the incoming batch with NaN.
    ///
    /// Note that ReLU *launders* NaN (`max(NaN, 0) == 0`), so this fault
    /// may never surface in the loss — but the convolution's weight
    /// gradient `centroidᵀ · δy` still multiplies by the poisoned input,
    /// and `NaN × 0 == NaN` drives the weights non-finite after the next
    /// optimiser step. The guardrail's parameter scan exists for exactly
    /// this failure shape.
    NanActivations,
    /// Overwrites one activation value with `+∞`, which ReLU passes
    /// through and the loss turns into NaN/∞ within one forward pass.
    InfActivations,
    /// Overwrites one learnable weight with NaN before the forward pass.
    NanWeights,
    /// Swaps every reuse layer's LSH families for a degenerate clustering
    /// (see [`DegenerateClustering`]).
    DegenerateClusters(DegenerateClustering),
}

/// A fault scheduled for a specific training iteration.
#[derive(Clone, Copy, Debug)]
struct ScheduledFault {
    at_iteration: usize,
    kind: FaultKind,
    fired: bool,
}

/// A deterministic script of failures for one training run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    scheduled: Vec<ScheduledFault>,
    io_failures_left: usize,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire once, just before training iteration
    /// `at_iteration` runs.
    #[must_use]
    pub fn inject_at(mut self, at_iteration: usize, kind: FaultKind) -> Self {
        self.scheduled.push(ScheduledFault { at_iteration, kind, fired: false });
        self
    }

    /// Makes the next `n` checkpoint write attempts fail with an injected
    /// I/O error (exercising the retry/backoff path).
    #[must_use]
    pub fn fail_checkpoint_writes(mut self, n: usize) -> Self {
        self.io_failures_left = n;
        self
    }

    /// Returns the faults due at `iteration`, marking each as fired so a
    /// post-rollback replay of the same iteration proceeds clean.
    pub fn take_due(&mut self, iteration: usize) -> Vec<FaultKind> {
        let mut due = Vec::new();
        for s in &mut self.scheduled {
            if !s.fired && s.at_iteration == iteration {
                s.fired = true;
                due.push(s.kind);
            }
        }
        due
    }

    /// True when every scheduled fault has fired and no I/O failures
    /// remain — the plan has nothing left to throw at the run.
    pub fn exhausted(&self) -> bool {
        self.io_failures_left == 0 && self.scheduled.iter().all(|s| s.fired)
    }
}

impl IoFault for FaultPlan {
    fn inject_io_error(&mut self) -> Option<io::Error> {
        if self.io_failures_left == 0 {
            return None;
        }
        self.io_failures_left -= 1;
        Some(io::Error::other("injected checkpoint fault"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_their_iteration() {
        let mut plan = FaultPlan::new()
            .inject_at(3, FaultKind::NanActivations)
            .inject_at(3, FaultKind::NanWeights)
            .inject_at(7, FaultKind::InfActivations);
        assert!(plan.take_due(0).is_empty());
        assert_eq!(plan.take_due(3), vec![FaultKind::NanActivations, FaultKind::NanWeights]);
        // Replaying iteration 3 after a rollback: nothing fires again.
        assert!(plan.take_due(3).is_empty());
        assert!(!plan.exhausted());
        assert_eq!(plan.take_due(7), vec![FaultKind::InfActivations]);
        assert!(plan.exhausted());
    }

    #[test]
    fn io_failures_are_bounded() {
        let mut plan = FaultPlan::new().fail_checkpoint_writes(2);
        assert!(plan.inject_io_error().is_some());
        assert!(plan.inject_io_error().is_some());
        assert!(plan.inject_io_error().is_none());
        assert!(plan.exhausted());
    }
}
