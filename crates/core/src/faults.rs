//! Deterministic fault injection for training-robustness tests.
//!
//! A [`FaultPlan`] is a scripted schedule of failures — numeric poison in
//! activations or weights, degenerate LSH clusterings, checkpoint-write
//! I/O errors — that the trainer consults at the top of each iteration.
//! Faults fire *exactly once* at their scheduled iteration, so a rollback
//! that replays the same iterations sees a clean run; that one-shot
//! semantics is what lets the guardrail tests assert recovery rather than
//! an injection loop.
//!
//! Everything here is deterministic: no randomness, no clocks. The same
//! plan against the same seeds produces the same failure at the same
//! iteration on every run.

use std::io;

use adr_nn::durable::IoFault;
use adr_reuse::DegenerateClustering;

/// One kind of injectable failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrites one activation value of the incoming batch with NaN.
    ///
    /// Note that ReLU *launders* NaN (`max(NaN, 0) == 0`), so this fault
    /// may never surface in the loss — but the convolution's weight
    /// gradient `centroidᵀ · δy` still multiplies by the poisoned input,
    /// and `NaN × 0 == NaN` drives the weights non-finite after the next
    /// optimiser step. The guardrail's parameter scan exists for exactly
    /// this failure shape.
    NanActivations,
    /// Overwrites one activation value with `+∞`, which ReLU passes
    /// through and the loss turns into NaN/∞ within one forward pass.
    InfActivations,
    /// Overwrites one learnable weight with NaN before the forward pass.
    NanWeights,
    /// Swaps every reuse layer's LSH families for a degenerate clustering
    /// (see [`DegenerateClustering`]).
    DegenerateClusters(DegenerateClustering),
}

/// A fault scheduled for a specific training iteration.
#[derive(Clone, Copy, Debug)]
struct ScheduledFault {
    at_iteration: usize,
    kind: FaultKind,
    fired: bool,
}

/// A deterministic script of failures for one training run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    scheduled: Vec<ScheduledFault>,
    io_failures_left: usize,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire once, just before training iteration
    /// `at_iteration` runs.
    #[must_use]
    pub fn inject_at(mut self, at_iteration: usize, kind: FaultKind) -> Self {
        self.scheduled.push(ScheduledFault { at_iteration, kind, fired: false });
        self
    }

    /// Makes the next `n` checkpoint write attempts fail with an injected
    /// I/O error (exercising the retry/backoff path).
    #[must_use]
    pub fn fail_checkpoint_writes(mut self, n: usize) -> Self {
        self.io_failures_left = n;
        self
    }

    /// Returns the faults due at `iteration`, marking each as fired so a
    /// post-rollback replay of the same iteration proceeds clean.
    pub fn take_due(&mut self, iteration: usize) -> Vec<FaultKind> {
        let mut due = Vec::new();
        for s in &mut self.scheduled {
            if !s.fired && s.at_iteration == iteration {
                s.fired = true;
                due.push(s.kind);
            }
        }
        due
    }

    /// True when every scheduled fault has fired and no I/O failures
    /// remain — the plan has nothing left to throw at the run.
    pub fn exhausted(&self) -> bool {
        self.io_failures_left == 0 && self.scheduled.iter().all(|s| s.fired)
    }
}

impl IoFault for FaultPlan {
    fn inject_io_error(&mut self) -> Option<io::Error> {
        if self.io_failures_left == 0 {
            return None;
        }
        self.io_failures_left -= 1;
        Some(io::Error::other("injected checkpoint fault"))
    }
}

/// One kind of injectable serving failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// Stalls the micro-batch for the given wall-clock (or virtual-clock)
    /// duration, driving the engine's latency pressure up.
    SlowBatch {
        /// How long the batch stalls, in milliseconds.
        stall_ms: u64,
    },
    /// Overwrites the first logit of the batch output with NaN *after* the
    /// forward pass, exercising the output sanitizer. (Poisoning inputs is
    /// not enough: ReLU launders NaN, see [`FaultKind::NanActivations`].)
    PoisonOutput,
}

/// A serving fault scheduled for a specific micro-batch.
#[derive(Clone, Copy, Debug)]
struct ScheduledServeFault {
    at_batch: usize,
    kind: ServeFaultKind,
    fired: bool,
}

/// A tenant-scoped output poisoning: the next `left` batches served for
/// `tenant` have their first logit overwritten with NaN after the forward
/// pass, exercising the quarantine path for exactly one tenant while
/// every other tenant's traffic stays clean.
#[derive(Clone, Debug)]
struct TenantPoison {
    tenant: String,
    left: usize,
}

/// A deterministic script of failures for one serving run — the serving
/// counterpart of [`FaultPlan`], keyed by micro-batch index instead of
/// training iteration. Same one-shot semantics: each scheduled fault fires
/// exactly once.
#[derive(Debug, Default)]
pub struct ServeFaultPlan {
    scheduled: Vec<ScheduledServeFault>,
    poison_requests_left: usize,
    corrupt_load_armed: bool,
    corrupt_swap_armed: bool,
    tenant_poisons: Vec<TenantPoison>,
}

impl ServeFaultPlan {
    /// Creates an empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire once, while micro-batch `at_batch` runs.
    #[must_use]
    pub fn inject_at_batch(mut self, at_batch: usize, kind: ServeFaultKind) -> Self {
        self.scheduled.push(ScheduledServeFault { at_batch, kind, fired: false });
        self
    }

    /// Poisons the next `n` submitted requests with a NaN pixel *before*
    /// admission validation sees them (exercising input rejection).
    #[must_use]
    pub fn poison_requests(mut self, n: usize) -> Self {
        self.poison_requests_left = n;
        self
    }

    /// Arms a one-shot corruption of the next checkpoint read: a byte in
    /// the middle of the file is flipped before parsing (exercising the
    /// loader's typed error path).
    #[must_use]
    pub fn corrupt_checkpoint_load(mut self) -> Self {
        self.corrupt_load_armed = true;
        self
    }

    /// Arms a one-shot `SwapCorruptArtifact` fault: the next artifact read
    /// performed *by a hot swap* has a mid-file byte flipped before
    /// parsing, exercising the gateway's verify-and-rollback path without
    /// touching ordinary startup loads.
    #[must_use]
    pub fn corrupt_swap_artifact(mut self) -> Self {
        self.corrupt_swap_armed = true;
        self
    }

    /// Schedules a tenant-scoped `PoisonOutput`: the next `n` batches the
    /// gateway serves for `tenant` get a NaN first logit after the forward
    /// pass. Other tenants' batches are untouched, so isolation tests can
    /// pin that quarantine and retry stay per-tenant.
    #[must_use]
    pub fn poison_tenant_output(mut self, tenant: &str, n: usize) -> Self {
        self.tenant_poisons.push(TenantPoison { tenant: tenant.to_string(), left: n });
        self
    }

    /// Returns the faults due at micro-batch `batch`, marking each fired.
    pub fn take_due(&mut self, batch: usize) -> Vec<ServeFaultKind> {
        let mut due = Vec::new();
        for s in &mut self.scheduled {
            if !s.fired && s.at_batch == batch {
                s.fired = true;
                due.push(s.kind);
            }
        }
        due
    }

    /// Consumes one request poisoning if any remain.
    pub fn take_request_poison(&mut self) -> bool {
        if self.poison_requests_left == 0 {
            return false;
        }
        self.poison_requests_left -= 1;
        true
    }

    /// Flips one byte in the middle of `bytes` if the corruption is armed;
    /// returns whether it fired. Empty inputs are left alone (truncation is
    /// already its own failure).
    pub fn corrupt_load(&mut self, bytes: &mut [u8]) -> bool {
        if !self.corrupt_load_armed || bytes.is_empty() {
            return false;
        }
        self.corrupt_load_armed = false;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        true
    }

    /// The swap-window twin of [`ServeFaultPlan::corrupt_load`]: flips one
    /// mid-file byte of a *hot-swap* artifact read if armed by
    /// [`ServeFaultPlan::corrupt_swap_artifact`]. One-shot.
    pub fn corrupt_swap(&mut self, bytes: &mut [u8]) -> bool {
        if !self.corrupt_swap_armed || bytes.is_empty() {
            return false;
        }
        self.corrupt_swap_armed = false;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        true
    }

    /// Consumes one tenant-scoped output poisoning for `tenant`, if any
    /// remain. The gateway calls this once per batch it serves for the
    /// tenant.
    pub fn take_tenant_poison(&mut self, tenant: &str) -> bool {
        for p in &mut self.tenant_poisons {
            if p.tenant == tenant && p.left > 0 {
                p.left -= 1;
                return true;
            }
        }
        false
    }

    /// True when every scheduled fault has fired and nothing remains armed.
    pub fn exhausted(&self) -> bool {
        self.poison_requests_left == 0
            && !self.corrupt_load_armed
            && !self.corrupt_swap_armed
            && self.tenant_poisons.iter().all(|p| p.left == 0)
            && self.scheduled.iter().all(|s| s.fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_their_iteration() {
        let mut plan = FaultPlan::new()
            .inject_at(3, FaultKind::NanActivations)
            .inject_at(3, FaultKind::NanWeights)
            .inject_at(7, FaultKind::InfActivations);
        assert!(plan.take_due(0).is_empty());
        assert_eq!(plan.take_due(3), vec![FaultKind::NanActivations, FaultKind::NanWeights]);
        // Replaying iteration 3 after a rollback: nothing fires again.
        assert!(plan.take_due(3).is_empty());
        assert!(!plan.exhausted());
        assert_eq!(plan.take_due(7), vec![FaultKind::InfActivations]);
        assert!(plan.exhausted());
    }

    #[test]
    fn io_failures_are_bounded() {
        let mut plan = FaultPlan::new().fail_checkpoint_writes(2);
        assert!(plan.inject_io_error().is_some());
        assert!(plan.inject_io_error().is_some());
        assert!(plan.inject_io_error().is_none());
        assert!(plan.exhausted());
    }

    #[test]
    fn serve_faults_fire_once_per_batch() {
        let mut plan = ServeFaultPlan::new()
            .inject_at_batch(1, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(1, ServeFaultKind::PoisonOutput)
            .inject_at_batch(4, ServeFaultKind::SlowBatch { stall_ms: 50 });
        assert!(plan.take_due(0).is_empty());
        assert_eq!(
            plan.take_due(1),
            vec![ServeFaultKind::SlowBatch { stall_ms: 200 }, ServeFaultKind::PoisonOutput]
        );
        assert!(plan.take_due(1).is_empty(), "one-shot: nothing fires twice");
        assert!(!plan.exhausted());
        assert_eq!(plan.take_due(4), vec![ServeFaultKind::SlowBatch { stall_ms: 50 }]);
        assert!(plan.exhausted());
    }

    #[test]
    fn request_poison_is_bounded() {
        let mut plan = ServeFaultPlan::new().poison_requests(2);
        assert!(plan.take_request_poison());
        assert!(plan.take_request_poison());
        assert!(!plan.take_request_poison());
        assert!(plan.exhausted());
    }

    #[test]
    fn swap_corruption_is_independent_of_load_corruption() {
        let mut plan = ServeFaultPlan::new().corrupt_swap_artifact();
        let mut bytes = vec![0u8; 8];
        assert!(!plan.corrupt_load(&mut bytes), "swap arming must not hit ordinary loads");
        assert!(plan.corrupt_swap(&mut bytes));
        assert_eq!(bytes[4], 0x40);
        let mut again = vec![0u8; 8];
        assert!(!plan.corrupt_swap(&mut again), "swap corruption is one-shot");
        assert!(plan.exhausted());
    }

    #[test]
    fn tenant_poison_is_scoped_and_bounded() {
        let mut plan = ServeFaultPlan::new().poison_tenant_output("beta", 2);
        assert!(!plan.take_tenant_poison("alpha"), "other tenants stay clean");
        assert!(plan.take_tenant_poison("beta"));
        assert!(!plan.exhausted());
        assert!(plan.take_tenant_poison("beta"));
        assert!(!plan.take_tenant_poison("beta"), "tenant poison is bounded");
        assert!(plan.exhausted());
    }

    #[test]
    fn checkpoint_corruption_flips_one_mid_byte_once() {
        let mut plan = ServeFaultPlan::new().corrupt_checkpoint_load();
        let mut empty: [u8; 0] = [];
        assert!(!plan.corrupt_load(&mut empty), "empty input is left alone");
        let mut bytes = vec![0u8; 8];
        assert!(plan.corrupt_load(&mut bytes));
        assert_eq!(bytes[4], 0x40);
        assert_eq!(bytes.iter().filter(|&&b| b != 0).count(), 1);
        let mut again = vec![0u8; 8];
        assert!(!plan.corrupt_load(&mut again), "corruption is one-shot");
        assert!(plan.exhausted());
    }
}
