//! Candidate `{L, H}` scheduling (Policy 3, §V-A(b)).
//!
//! Given the descending `[L]` list and ascending `[H]` list of a layer, the
//! schedule starts at the most aggressive setting `{Lmax, Hmin}` and walks to
//! the most precise `{Lmin, Hmax}`. At each step it may either shrink `L`
//! (finer granularity, cost `ΔE = 1/L₂ − 1/L₁`, Eq. 22) or grow `H` (more
//! hashes, cost `ΔE = (H₂ − H₁)/M`, Eq. 23); Policy 3 always takes the move
//! with the smaller expected-time increase. The construction is offline; the
//! controller walks the list at runtime.

use adr_reuse::cost::{delta_e_h, delta_e_l};

use crate::policy::{HRange, LRange};

/// One `{L, H}` setting.
pub type Setting = (usize, usize);

/// The ordered candidate schedule of one layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateList {
    settings: Vec<Setting>,
}

impl CandidateList {
    /// Builds the Policy-3 ordering for a layer with `m` weight filters.
    ///
    /// # Panics
    /// Panics if either range is empty or `m == 0`.
    pub fn build(l_range: &LRange, h_range: &HRange, m: usize) -> Self {
        assert!(m > 0, "M must be positive");
        let ls = l_range.values();
        let hs = h_range.values();
        assert!(!ls.is_empty() && !hs.is_empty(), "empty parameter ranges");
        let mut settings = Vec::with_capacity(ls.len() + hs.len() - 1);
        let (mut i, mut j) = (0usize, 0usize);
        settings.push((ls[0], hs[0]));
        while i + 1 < ls.len() || j + 1 < hs.len() {
            let l_step = (i + 1 < ls.len()).then(|| delta_e_l(ls[i], ls[i + 1]));
            let h_step = (j + 1 < hs.len()).then(|| delta_e_h(hs[j], hs[j + 1], m));
            match (l_step, h_step) {
                (Some(dl), Some(dh)) if dl <= dh => i += 1,
                (Some(_), Some(_)) => j += 1,
                (Some(_), None) => i += 1,
                (None, Some(_)) => j += 1,
                (None, None) => unreachable!("loop condition guarantees a step exists"),
            }
            settings.push((ls[i], hs[j]));
        }
        Self { settings }
    }

    /// The ordered settings, most aggressive first.
    pub fn settings(&self) -> &[Setting] {
        &self.settings
    }

    /// Number of settings.
    pub fn len(&self) -> usize {
        self.settings.len()
    }

    /// Whether the list is empty (never true for a built list).
    pub fn is_empty(&self) -> bool {
        self.settings.is_empty()
    }

    /// Setting at `index`, clamped to the last entry.
    pub fn get_clamped(&self, index: usize) -> Setting {
        self.settings[index.min(self.settings.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(kw: usize, ic: usize, n: usize) -> (LRange, HRange) {
        (LRange::from_geometry(kw, ic, true), HRange::from_rows(n, 8))
    }

    #[test]
    fn starts_aggressive_ends_precise() {
        let (lr, hr) = ranges(5, 64, 50_000);
        let c = CandidateList::build(&lr, &hr, 64);
        assert_eq!(*c.settings().first().unwrap(), (lr.max(), hr.min()));
        assert_eq!(*c.settings().last().unwrap(), (lr.min(), hr.max()));
    }

    #[test]
    fn covers_the_whole_lattice_path() {
        let (lr, hr) = ranges(5, 64, 50_000);
        let c = CandidateList::build(&lr, &hr, 64);
        assert_eq!(c.len(), lr.values().len() + hr.values().len() - 1);
        // Each consecutive pair differs in exactly one coordinate, moving
        // monotonically (L never grows, H never shrinks).
        for w in c.settings().windows(2) {
            let (l1, h1) = w[0];
            let (l2, h2) = w[1];
            let l_moved = l1 != l2;
            let h_moved = h1 != h2;
            assert!(l_moved ^ h_moved, "exactly one knob per step");
            assert!(l2 <= l1 && h2 >= h1, "monotone walk");
        }
    }

    #[test]
    fn prefers_cheaper_move_first() {
        // With a huge M, growing H is nearly free, so H steps come first.
        let (lr, hr) = ranges(5, 64, 50_000);
        let c = CandidateList::build(&lr, &hr, 1_000_000);
        let (l0, _h0) = c.settings()[0];
        let (l1, h1) = c.settings()[1];
        assert_eq!(l1, l0, "L untouched while H steps are cheap");
        assert!(h1 > hr.min());
    }

    #[test]
    fn prefers_l_steps_when_m_is_tiny() {
        // With tiny M, every H step is expensive; early steps shrink L when
        // that costs less.
        let (lr, hr) = ranges(5, 256, 50_000);
        let c = CandidateList::build(&lr, &hr, 1);
        let (l1, h1) = c.settings()[1];
        // First move must be the cheaper one; for M = 1 an H step costs ≥ 1
        // while an L step from 80 to 75 costs 1/75 − 1/80 ≈ tiny.
        assert!(l1 < lr.max());
        assert_eq!(h1, hr.min());
    }

    #[test]
    fn single_value_ranges_degenerate_gracefully() {
        let lr = LRange::from_geometry(3, 1, false); // single L
        let hr = HRange::from_rows(4, 1); // single H
        let c = CandidateList::build(&lr, &hr, 16);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get_clamped(99), c.settings()[0]);
    }

    #[test]
    fn get_clamped_saturates() {
        let (lr, hr) = ranges(5, 16, 10_000);
        let c = CandidateList::build(&lr, &hr, 64);
        assert_eq!(c.get_clamped(usize::MAX), *c.settings().last().unwrap());
        assert_eq!(c.get_clamped(0), c.settings()[0]);
    }
}
