//! Cross-crate equivalence tests: the deep-reuse convolution must
//! degenerate to the exact dense convolution when clustering is lossless,
//! in both directions of propagation.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::nn::conv::Conv2d;
use adaptive_deep_reuse::nn::{Layer, Mode};
use adaptive_deep_reuse::reuse::{ReuseConfig, ReuseConv2d};
use adaptive_deep_reuse::tensor::im2col::ConvGeom;
use adaptive_deep_reuse::tensor::rng::AdrRng;
use adaptive_deep_reuse::tensor::Tensor4;

fn gaussian_input(n: usize, h: usize, w: usize, c: usize, seed: u64) -> Tensor4 {
    let mut rng = AdrRng::seeded(seed);
    Tensor4::from_fn(n, h, w, c, |_, _, _, _| rng.gauss())
}

fn max_diff(a: &Tensor4, b: &Tensor4) -> f32 {
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Builds a dense conv and a weight-sharing reuse twin.
fn twins(geom: ConvGeom, m: usize, l: usize, h: usize, seed: u64) -> (Conv2d, ReuseConv2d) {
    let mut rng = AdrRng::seeded(seed);
    let dense = Conv2d::new("dense", geom, m, &mut rng);
    let reuse = ReuseConv2d::from_dense(&dense, ReuseConfig::new(l, h, false), &mut rng);
    (dense, reuse)
}

#[test]
fn forward_agrees_on_gaussian_input_with_many_hashes() {
    let geom = ConvGeom::new(10, 10, 3, 3, 3, 1, 1).unwrap();
    let (mut dense, mut reuse) = twins(geom, 8, 27, 48, 1);
    let x = gaussian_input(2, 10, 10, 3, 2);
    let yd = dense.forward(&x, Mode::Eval);
    let yr = reuse.forward(&x, Mode::Eval);
    // Gaussian receptive fields are pairwise distinct with 48 hyperplanes:
    // clusters are (almost surely) singletons, so outputs agree.
    assert!(
        reuse.stats().avg_remaining_ratio > 0.95,
        "precondition: near-singleton clusters, rc = {}",
        reuse.stats().avg_remaining_ratio
    );
    assert!(max_diff(&yd, &yr) < 1e-3, "forward diff {}", max_diff(&yd, &yr));
}

#[test]
fn forward_agrees_with_sub_vector_partition() {
    // L < K exercises the partial-sum reconstruction (Fig. 3).
    let geom = ConvGeom::new(8, 8, 4, 3, 3, 1, 0).unwrap();
    let (mut dense, mut reuse) = twins(geom, 6, 9, 40, 5);
    let x = gaussian_input(2, 8, 8, 4, 6);
    let yd = dense.forward(&x, Mode::Eval);
    let yr = reuse.forward(&x, Mode::Eval);
    // Equivalence only holds when every sub-vector cluster is a singleton;
    // 40 hyperplanes on 9-dim gaussian sub-vectors make that overwhelmingly
    // likely but not certain, so pin the precondition before comparing.
    assert!(
        reuse.stats().avg_remaining_ratio > 0.999,
        "precondition: singleton clusters, rc = {}",
        reuse.stats().avg_remaining_ratio
    );
    assert!(max_diff(&yd, &yr) < 1e-2, "forward diff {}", max_diff(&yd, &yr));
}

#[test]
fn backward_agrees_when_clusters_are_singletons() {
    let geom = ConvGeom::new(8, 8, 2, 3, 3, 1, 0).unwrap();
    let (mut dense, mut reuse) = twins(geom, 5, 18, 45, 5);
    let x = gaussian_input(1, 8, 8, 2, 6);
    dense.forward(&x, Mode::Train);
    reuse.forward(&x, Mode::Train);
    assert!(reuse.stats().avg_remaining_ratio > 0.95, "need singleton clusters");
    let mut grng = AdrRng::seeded(7);
    let g = Tensor4::from_fn(1, 6, 6, 5, |_, _, _, _| grng.gauss());
    let dxd = dense.backward(&g);
    let dxr = reuse.backward(&g);
    assert!(max_diff(&dxd, &dxr) < 1e-2, "input-grad diff {}", max_diff(&dxd, &dxr));
    // Weight and bias gradients agree too.
    let wd: Vec<f32> = dense.params_mut()[0].grad.to_vec();
    let wr: Vec<f32> = reuse.params_mut()[0].grad.to_vec();
    let wdiff = wd.iter().zip(&wr).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(wdiff < 1e-2, "weight-grad diff {wdiff}");
}

#[test]
fn reuse_error_is_monotone_in_hash_count() {
    // Correlated input (smooth ramp + noise) so clusters actually form.
    let geom = ConvGeom::new(12, 12, 2, 3, 3, 1, 0).unwrap();
    let mut rng = AdrRng::seeded(8);
    let x = Tensor4::from_fn(2, 12, 12, 2, |_, y, xx, c| {
        ((y + xx) as f32 * 0.1 - 1.0) + c as f32 * 0.2 + 0.02 * rng.gauss()
    });
    let mut dense = Conv2d::new("d", geom, 8, &mut AdrRng::seeded(9));
    let yd = dense.forward(&x, Mode::Eval);
    let err_at = |h: usize| {
        let mut reuse = ReuseConv2d::from_dense(
            &dense,
            ReuseConfig::new(18, h, false),
            &mut AdrRng::seeded(10),
        );
        let yr = reuse.forward(&x, Mode::Eval);
        max_diff(&yd, &yr)
    };
    let coarse = err_at(3);
    let fine = err_at(30);
    assert!(fine <= coarse, "error should not grow with more hashes: H=3 {coarse} vs H=30 {fine}");
}

#[test]
fn flop_meter_never_exceeds_profitable_bound_claims() {
    // The meter's baseline must be exactly N*K*M (forward) and 2*N*K*M
    // (backward) regardless of reuse configuration.
    let geom = ConvGeom::new(9, 9, 3, 3, 3, 1, 0).unwrap();
    let (_, mut reuse) = twins(geom, 7, 9, 10, 11);
    let x = gaussian_input(2, 9, 9, 3, 12);
    reuse.forward(&x, Mode::Train);
    let n = 2 * 7 * 7;
    let k = 27;
    let m = 7;
    assert_eq!(reuse.baseline_flops().forward, (n * k * m) as u64);
    reuse.backward(&Tensor4::zeros(2, 7, 7, 7));
    assert_eq!(reuse.baseline_flops().backward, (2 * n * k * m) as u64);
}

#[test]
fn retuning_mid_stream_keeps_layer_functional() {
    let geom = ConvGeom::new(8, 8, 2, 3, 3, 1, 0).unwrap();
    let (_, mut reuse) = twins(geom, 4, 18, 12, 13);
    let x = gaussian_input(1, 8, 8, 2, 14);
    for (l, h, cr) in [(18, 12, false), (6, 8, true), (3, 15, false), (18, 4, true)] {
        reuse.set_reuse_params(l, h, cr);
        let y = reuse.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (1, 6, 6, 4));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let dx = reuse.backward(&Tensor4::zeros(1, 6, 6, 4));
        assert_eq!(dx.shape(), (1, 8, 8, 2));
    }
}
