//! Property-style tests on layer semantics, swept over seeded random cases
//! (see `tests/properties.rs` for the rationale of the dep-free harness).

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::nn::batchnorm::BatchNorm;
use adaptive_deep_reuse::nn::pool::Pool2d;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::nn::softmax::{softmax, softmax_cross_entropy};
use adaptive_deep_reuse::nn::{Layer, Mode};
use adaptive_deep_reuse::tensor::rng::AdrRng;
use adaptive_deep_reuse::tensor::Tensor4;

/// Runs `body` over `cases` independent seeded RNG streams.
fn for_cases(cases: u64, mut body: impl FnMut(u64, &mut AdrRng)) {
    for case in 0..cases {
        let mut rng = AdrRng::seeded(0x1A7E5 + case);
        body(case, &mut rng);
    }
}

/// A random NHWC tensor with dims `n ∈ [1, max_n]`, `h, w ∈ [2, max_hw]`,
/// `c ∈ [1, max_c]` and values in `[-8, 8)`.
fn small_tensor(rng: &mut AdrRng, max_n: usize, max_hw: usize, max_c: usize) -> Tensor4 {
    let n = 1 + rng.below(max_n);
    let h = 2 + rng.below(max_hw - 1);
    let w = 2 + rng.below(max_hw - 1);
    let c = 1 + rng.below(max_c);
    Tensor4::from_fn(n, h, w, c, |_, _, _, _| rng.uniform_in(-8.0, 8.0))
}

#[test]
fn relu_is_idempotent() {
    for_cases(48, |case, rng| {
        let x = small_tensor(rng, 2, 5, 3);
        let mut relu = Relu::new("r");
        let once = relu.forward(&x, Mode::Eval);
        let twice = relu.forward(&once, Mode::Eval);
        assert_eq!(once.as_slice(), twice.as_slice(), "case {case}");
        assert!(once.as_slice().iter().all(|&v| v >= 0.0), "case {case}");
    });
}

#[test]
fn max_pool_dominates_avg_pool() {
    for_cases(48, |case, rng| {
        let x = small_tensor(rng, 2, 6, 2);
        let mut maxp = Pool2d::max("m", 2, 2);
        let mut avgp = Pool2d::avg("a", 2, 2);
        let ym = maxp.forward(&x, Mode::Eval);
        let ya = avgp.forward(&x, Mode::Eval);
        for (m, a) in ym.as_slice().iter().zip(ya.as_slice()) {
            assert!(m >= a, "case {case}: max {m} < avg {a}");
        }
    });
}

#[test]
fn max_pool_is_monotone() {
    for_cases(48, |case, rng| {
        let x = small_tensor(rng, 1, 6, 2);
        let bump = rng.uniform_in(0.0, 3.0);
        let mut pool = Pool2d::max("m", 2, 2);
        let base = pool.forward(&x, Mode::Eval);
        let mut shifted = x.clone();
        for v in shifted.as_mut_slice() {
            *v += bump;
        }
        let lifted = pool.forward(&shifted, Mode::Eval);
        for (b, l) in base.as_slice().iter().zip(lifted.as_slice()) {
            assert!(l >= b, "case {case}: pooling must preserve pointwise ordering");
        }
    });
}

#[test]
fn batchnorm_output_is_input_scale_invariant() {
    for_cases(48, |case, rng| {
        let x = small_tensor(rng, 2, 4, 3);
        let scale = rng.uniform_in(0.5, 20.0);
        // Training-mode batch norm normalises away a global positive scale.
        let mut bn1 = BatchNorm::new("a", x.channels());
        let mut bn2 = BatchNorm::new("b", x.channels());
        let y1 = bn1.forward(&x, Mode::Train);
        let mut scaled = x.clone();
        for v in scaled.as_mut_slice() {
            *v *= scale;
        }
        let y2 = bn2.forward(&scaled, Mode::Train);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 2e-2, "case {case}: {a} vs {b} (scale {scale})");
        }
    });
}

#[test]
fn softmax_outputs_are_probabilities() {
    for_cases(48, |case, rng| {
        let c = 2 + rng.below(22);
        let logits: Vec<f32> = (0..c).map(|_| rng.uniform_in(-20.0, 20.0)).collect();
        let z = Tensor4::from_vec(1, 1, 1, c, logits).expect("shape matches data");
        let p = softmax(&z);
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: sum {sum}");
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)), "case {case}");
    });
}

#[test]
fn cross_entropy_is_minimised_at_true_label() {
    for_cases(48, |case, rng| {
        // Raising the true logit must never increase the loss.
        let c = 3 + rng.below(5);
        let logits: Vec<f32> = (0..c).map(|_| rng.uniform_in(-4.0, 4.0)).collect();
        let label = rng.below(3.min(c));
        let z = Tensor4::from_vec(1, 1, 1, c, logits.clone()).expect("shape matches data");
        let base = softmax_cross_entropy(&z, &[label]).loss;
        let mut boosted = logits;
        boosted[label] += 1.0;
        let zb = Tensor4::from_vec(1, 1, 1, c, boosted).expect("shape matches data");
        let better = softmax_cross_entropy(&zb, &[label]).loss;
        assert!(better <= base + 1e-5, "case {case}: boosting true logit raised loss");
    });
}
