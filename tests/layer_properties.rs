//! Property-based tests on layer semantics.

use adaptive_deep_reuse::nn::batchnorm::BatchNorm;
use adaptive_deep_reuse::nn::pool::Pool2d;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::nn::softmax::{softmax, softmax_cross_entropy};
use adaptive_deep_reuse::nn::{Layer, Mode};
use adaptive_deep_reuse::tensor::Tensor4;
use proptest::prelude::*;

fn small_tensor(
    max_n: usize,
    max_hw: usize,
    max_c: usize,
) -> impl Strategy<Value = Tensor4> {
    (1..=max_n, 2..=max_hw, 2..=max_hw, 1..=max_c).prop_flat_map(|(n, h, w, c)| {
        proptest::collection::vec(-8.0f32..8.0, n * h * w * c)
            .prop_map(move |data| Tensor4::from_vec(n, h, w, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relu_is_idempotent(x in small_tensor(2, 5, 3)) {
        let mut relu = Relu::new("r");
        let once = relu.forward(&x, Mode::Eval);
        let twice = relu.forward(&once, Mode::Eval);
        prop_assert_eq!(once.as_slice(), twice.as_slice());
        prop_assert!(once.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn max_pool_dominates_avg_pool(x in small_tensor(2, 6, 2)) {
        let mut maxp = Pool2d::max("m", 2, 2);
        let mut avgp = Pool2d::avg("a", 2, 2);
        let ym = maxp.forward(&x, Mode::Eval);
        let ya = avgp.forward(&x, Mode::Eval);
        for (m, a) in ym.as_slice().iter().zip(ya.as_slice()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
    }

    #[test]
    fn max_pool_is_monotone(x in small_tensor(1, 6, 2), bump in 0.0f32..3.0) {
        let mut pool = Pool2d::max("m", 2, 2);
        let base = pool.forward(&x, Mode::Eval);
        let mut shifted = x.clone();
        for v in shifted.as_mut_slice() {
            *v += bump;
        }
        let lifted = pool.forward(&shifted, Mode::Eval);
        for (b, l) in base.as_slice().iter().zip(lifted.as_slice()) {
            prop_assert!(l >= b, "pooling must preserve pointwise ordering");
        }
    }

    #[test]
    fn batchnorm_output_is_input_scale_invariant(
        x in small_tensor(2, 4, 3), scale in 0.5f32..20.0,
    ) {
        // Training-mode batch norm normalises away a global positive scale.
        let mut bn1 = BatchNorm::new("a", x.channels());
        let mut bn2 = BatchNorm::new("b", x.channels());
        let y1 = bn1.forward(&x, Mode::Train);
        let mut scaled = x.clone();
        for v in scaled.as_mut_slice() {
            *v *= scale;
        }
        let y2 = bn2.forward(&scaled, Mode::Train);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b} (scale {scale})");
        }
    }

    #[test]
    fn softmax_outputs_are_probabilities(
        logits in proptest::collection::vec(-20.0f32..20.0, 2..24),
    ) {
        let c = logits.len();
        let z = Tensor4::from_vec(1, 1, 1, c, logits).unwrap();
        let p = softmax(&z);
        let sum: f32 = p.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_entropy_is_minimised_at_true_label(
        logits in proptest::collection::vec(-4.0f32..4.0, 3..8),
        label in 0usize..3,
    ) {
        // Raising the true logit must never increase the loss.
        let c = logits.len();
        prop_assume!(label < c);
        let z = Tensor4::from_vec(1, 1, 1, c, logits.clone()).unwrap();
        let base = softmax_cross_entropy(&z, &[label]).loss;
        let mut boosted = logits;
        boosted[label] += 1.0;
        let zb = Tensor4::from_vec(1, 1, 1, c, boosted).unwrap();
        let better = softmax_cross_entropy(&zb, &[label]).loss;
        prop_assert!(better <= base + 1e-5, "boosting true logit raised loss");
    }
}
