//! End-to-end determinism: two training runs from the same seed must be
//! bitwise identical — losses, every learned weight, and the clustering
//! behaviour of the reuse path. This is the runtime counterpart of the
//! `adr::determinism` lint: the lint bans unseeded entropy and unordered
//! map iteration in float paths, and this test catches anything the
//! static pass cannot see.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::serve::EngineReport;

/// One training run, reduced to bit patterns: per-step losses, every
/// parameter of every layer, and per-reuse-layer cluster statistics.
struct RunTrace {
    loss_bits: Vec<u32>,
    weight_bits: Vec<u32>,
    cluster_counts: Vec<u64>,
}

/// Builds the reuse net from `seed`, trains it for three steps on a batch
/// derived from the same seed, and snapshots everything that could drift.
fn run(seed: u64) -> RunTrace {
    let mut rng = AdrRng::seeded(seed);
    let mut net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);

    // Synthetic batch from a split of the same generator: any entropy-order
    // change in network construction would shift this data too, which is
    // exactly what the test should detect.
    let mut data_rng = rng.split(1);
    let batch = 8;
    let mut pixels = vec![0.0f32; batch * 16 * 16 * 3];
    data_rng.fill_gauss(&mut pixels);
    let images = Tensor4::from_vec(batch, 16, 16, 3, pixels).unwrap();
    let labels: Vec<usize> = (0..batch).map(|_| data_rng.below(4)).collect();

    let mut sgd = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0);
    let loss_bits =
        (0..3).map(|_| net.train_batch(&images, &labels, &mut sgd).loss.to_bits()).collect();

    let mut weight_bits = Vec::new();
    let mut cluster_counts = Vec::new();
    for layer in net.layers_mut() {
        if let Some(reuse) = layer.as_any_mut().and_then(|a| a.downcast_mut::<ReuseConv2d>()) {
            let stats = reuse.stats();
            cluster_counts.push(stats.avg_clusters.to_bits());
            cluster_counts.push(stats.avg_remaining_ratio.to_bits());
        }
        for param in layer.params_mut() {
            weight_bits.extend(param.data.iter().map(|w| w.to_bits()));
        }
    }

    RunTrace { loss_bits, weight_bits, cluster_counts }
}

#[test]
fn reuse_training_is_bitwise_reproducible() {
    let a = run(42);
    let b = run(42);

    assert_eq!(a.loss_bits, b.loss_bits, "per-step losses diverged between identical runs");
    assert_eq!(
        a.cluster_counts, b.cluster_counts,
        "reuse cluster statistics diverged between identical runs"
    );
    assert_eq!(a.weight_bits.len(), b.weight_bits.len());
    let diverged = a.weight_bits.iter().zip(&b.weight_bits).filter(|(x, y)| x != y).count();
    assert_eq!(diverged, 0, "{diverged} weight scalars diverged between identical runs");

    // Sanity: training actually happened (losses move, reuse layers exist).
    assert!(a.loss_bits[0] != a.loss_bits[2], "loss never changed across steps");
    assert_eq!(a.cluster_counts.len(), 4, "expected stats from both reuse conv layers");
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the trivial failure mode where everything above passes
    // because the snapshots are constant (e.g. all zeros).
    let a = run(42);
    let b = run(43);
    assert_ne!(a.loss_bits, b.loss_bits, "different seeds produced identical losses");
}

/// One serving run against a fixed checkpoint, reduced to bit patterns:
/// every response's logits plus the full engine report (counters, events,
/// per-stage attribution, latency histogram).
fn serve_run(checkpoint: &std::path::Path) -> (Vec<u32>, EngineReport) {
    let mut rng = AdrRng::seeded(42);
    let mut net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    Checkpoint::load(checkpoint).unwrap().restore(&mut net).unwrap();
    let cfg = EngineConfig { queue_capacity: 16, max_batch: 4, ..EngineConfig::default() };
    let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();

    // The request stream: mixed smooth images, one deliberately poisoned.
    let mut data_rng = rng.split(2);
    let images: Vec<Tensor4> = (0..12)
        .map(|i| {
            let mut pixels = vec![0.0f32; 16 * 16 * 3];
            data_rng.fill_gauss(&mut pixels);
            if i == 5 {
                pixels[0] = f32::NAN;
            }
            Tensor4::from_vec(1, 16, 16, 3, pixels).unwrap()
        })
        .collect();

    let mut logits_bits = Vec::new();
    for outcome in engine.serve_all(&images).into_iter().flatten() {
        logits_bits.extend(outcome.logits.iter().map(|v| v.to_bits()));
    }
    (logits_bits, engine.into_report())
}

#[test]
fn serving_the_same_stream_twice_is_bitwise_identical() {
    // Checkpoint once; both runs load the same bytes.
    let path = std::env::temp_dir().join("adr_determinism_serving.adr1");
    let mut rng = AdrRng::seeded(42);
    let mut net = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    Checkpoint::capture(&mut net).save(&path).unwrap();

    let (logits_a, report_a) = serve_run(&path);
    let (logits_b, report_b) = serve_run(&path);

    assert!(!logits_a.is_empty(), "no responses were served");
    assert_eq!(logits_a, logits_b, "served logits diverged between identical streams");
    assert_eq!(report_a, report_b, "engine reports diverged between identical streams");
    // Sanity: the stream exercised both acceptance and rejection.
    assert_eq!(report_a.admitted, 11);
    assert_eq!(report_a.rejected_non_finite, 1);
    std::fs::remove_file(&path).ok();
}

/// The telemetry determinism contract (DESIGN.md §11): everything a sink
/// records *except wall times* is part of the deterministic surface. Two
/// identical seeded instrumented runs must export bitwise-identical value
/// telemetry, and installing a sink must not perturb training itself.
#[test]
fn exported_telemetry_is_bitwise_reproducible() {
    use adaptive_deep_reuse::obs;
    use std::rc::Rc;

    let instrumented = |seed: u64| -> (String, RunTrace) {
        let recorder = obs::Recorder::new();
        let guard = obs::install(Rc::new(recorder.clone()));
        let trace = run(seed);
        drop(guard);
        (recorder.to_json_lines(false), trace)
    };

    let (lines_a, trace_a) = instrumented(42);
    let (lines_b, trace_b) = instrumented(42);
    assert!(!lines_a.is_empty(), "instrumented training exported no telemetry");
    assert_eq!(lines_a, lines_b, "value telemetry diverged between identical runs");
    assert!(
        !lines_a.contains(obs::PHASE_TIME_METRIC),
        "wall-clock metrics leaked into the deterministic export"
    );

    // The sink is an observer: the observed run must match an unobserved one.
    let bare = run(42);
    assert_eq!(trace_a.loss_bits, bare.loss_bits, "telemetry perturbed training losses");
    assert_eq!(trace_a.weight_bits, bare.weight_bits, "telemetry perturbed learned weights");
    assert_eq!(trace_b.cluster_counts, bare.cluster_counts);
}
