//! Checkpoint persistence across model kinds, including reuse layers and
//! batch-norm running state.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::BatchSource;
use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::nn::batchnorm::BatchNorm;
use adaptive_deep_reuse::nn::checkpoint::Checkpoint;
use adaptive_deep_reuse::nn::dense::Dense;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::nn::{LrSchedule, Network, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;
use adaptive_deep_reuse::source::DatasetSource;

fn small_source(seed: u64) -> DatasetSource {
    let cfg = SynthConfig {
        num_images: 96,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 2,
        image_variability: 0.4,
    };
    DatasetSource::new(SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed)), 16, 16)
}

#[test]
fn reuse_model_checkpoint_round_trips_through_bytes() {
    let mut rng = AdrRng::seeded(1);
    let mut net =
        cifarnet::bench_scale(4, ConvMode::Reuse(ReuseConfig::new(10, 10, false)), &mut rng);
    let mut source = small_source(2);
    let mut sgd = Sgd::new(LrSchedule::Constant(0.02), 0.9, 0.0).with_clip_norm(5.0);
    for it in 0..30 {
        let (x, y) = source.batch(it % source.num_batches());
        net.train_batch(&x, &y, &mut sgd);
    }
    let snap = Checkpoint::capture(&mut net);
    let mut bytes = Vec::new();
    snap.write_to(&mut bytes).unwrap();
    let loaded = Checkpoint::read_from(&mut bytes.as_slice()).unwrap();
    assert_eq!(loaded, snap);

    // A freshly initialised twin gives identical logits after restore.
    let mut twin = cifarnet::bench_scale(
        4,
        ConvMode::Reuse(ReuseConfig::new(10, 10, false)),
        &mut AdrRng::seeded(77),
    );
    loaded.restore(&mut twin).unwrap();
    let (probe, _) = source.probe();
    // Reuse layers hash with layer-private families, so logits are close
    // (clustering may differ) — compare through the *dense-equivalent*
    // parameters instead: capture again and require bit equality.
    assert_eq!(Checkpoint::capture(&mut twin), snap);
    let _ = probe;
}

#[test]
fn batchnorm_running_state_survives_checkpoint() {
    let build = |seed: u64| {
        let mut rng = AdrRng::seeded(seed);
        let mut net = Network::new((4, 4, 2));
        net.push(Box::new(BatchNorm::new("bn", 2)));
        net.push(Box::new(Relu::new("relu")));
        net.push(Box::new(Dense::new("fc", 32, 2, &mut rng)));
        net
    };
    let mut net = build(1);
    let mut xrng = AdrRng::seeded(3);
    let x = Tensor4::from_fn(8, 4, 4, 2, |_, _, _, _| xrng.gauss() * 3.0 + 1.0);
    let mut sgd = Sgd::constant(0.01);
    for _ in 0..10 {
        net.train_batch(&x, &[0, 1, 0, 1, 0, 1, 0, 1], &mut sgd);
    }
    let snap = Checkpoint::capture(&mut net);
    assert_eq!(snap.num_state_buffers(), 2, "bn running mean + var");

    let mut fresh = build(9);
    snap.restore(&mut fresh).unwrap();
    // Eval logits must match exactly: running stats were restored too.
    let a = net.forward(&x, Mode::Eval);
    let b = fresh.forward(&x, Mode::Eval);
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn checkpoint_of_dense_model_does_not_fit_reuse_twin_of_other_shape() {
    let mut rng = AdrRng::seeded(4);
    let mut dense = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    let snap = Checkpoint::capture(&mut dense);
    let mut other = cifarnet::bench_scale(10, ConvMode::Dense, &mut AdrRng::seeded(5));
    // 10-class head has a different logits layer size.
    assert!(snap.restore(&mut other).is_err());
}
