//! Corrupt-artifact handling: every damaged checkpoint or train-state file
//! must fail closed with a typed error and leave the live network (and any
//! previous on-disk artifact) untouched.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::nn::dense::Dense;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::tensor::im2col::ConvGeom;

fn reuse_net(seed: u64) -> Network {
    let mut rng = AdrRng::seeded(seed);
    let mut net = Network::new((6, 6, 1));
    let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
    net.push(Box::new(ReuseConv2d::new("conv1", g, 6, ReuseConfig::new(3, 6, false), &mut rng)));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Dense::new("fc", 4 * 4 * 6, 3, &mut rng)));
    net
}

fn weight_bits(net: &mut Network) -> Vec<Vec<u32>> {
    let sgd = Sgd::constant(0.01);
    TrainState::capture(net, &sgd, Strategy::baseline(), 0)
        .params
        .iter()
        .map(|s| s.iter().map(|v| v.to_bits()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Parameter checkpoints (`Checkpoint`, the ADR1 format)
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_truncated_header_is_typed() {
    let mut net = reuse_net(1);
    let bytes = Checkpoint::capture(&mut net).to_bytes();
    let err = Checkpoint::from_bytes(&bytes[..6]).unwrap_err();
    assert!(matches!(err, CheckpointError::Truncated(_)), "{err}");
    // Even shorter than the magic: still typed, still closed.
    let err = Checkpoint::from_bytes(&bytes[..2]).unwrap_err();
    assert!(matches!(err, CheckpointError::Truncated("magic")), "{err}");
}

#[test]
fn checkpoint_bad_magic_is_typed() {
    let mut net = reuse_net(2);
    let mut bytes = Checkpoint::capture(&mut net).to_bytes();
    bytes[0] ^= 0xFF;
    let err = Checkpoint::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, CheckpointError::BadMagic), "{err}");
    // A short file full of junk is "not a checkpoint", not "truncated".
    let err = Checkpoint::from_bytes(b"garbage!").unwrap_err();
    assert!(matches!(err, CheckpointError::BadMagic), "{err}");
}

#[test]
fn checkpoint_unknown_version_is_typed() {
    let mut net = reuse_net(3);
    let mut bytes = Checkpoint::capture(&mut net).to_bytes();
    bytes[4] = 99;
    let err = Checkpoint::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, CheckpointError::UnsupportedVersion(99)), "{err}");
}

#[test]
fn checkpoint_short_f32_section_is_typed() {
    let mut net = reuse_net(4);
    let bytes = Checkpoint::capture(&mut net).to_bytes();
    // The ADR1 format verifies its whole-payload CRC before parsing any
    // section, so a cut anywhere past the header surfaces as a checksum
    // mismatch — still typed, still closed.
    for cut in [5, 40] {
        let err = Checkpoint::from_bytes(&bytes[..bytes.len() - cut]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Truncated(_) | CheckpointError::ChecksumMismatch { .. }),
            "cut {cut}: {err}"
        );
    }
}

#[test]
fn checkpoint_flipped_bit_is_detected_by_checksum() {
    let mut net = reuse_net(5);
    let bytes = Checkpoint::capture(&mut net).to_bytes();
    let mut flipped = bytes.clone();
    let mid = bytes.len() / 2;
    flipped[mid] ^= 0x01;
    let err = Checkpoint::from_bytes(&flipped).unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::Truncated(_)
                | CheckpointError::SectionOverflow
        ),
        "a single flipped bit anywhere must be caught: {err}"
    );
}

#[test]
fn failed_checkpoint_restore_leaves_network_untouched() {
    let mut donor = reuse_net(6);
    let checkpoint = Checkpoint::capture(&mut donor);

    // A structurally different network: restore must refuse it wholesale.
    let mut rng = AdrRng::seeded(60);
    let mut other = Network::new((6, 6, 1));
    other.push(Box::new(Dense::new("fc", 36, 3, &mut rng)));
    let before = weight_bits(&mut other);
    let err = checkpoint.restore(&mut other).unwrap_err();
    assert!(matches!(err, CheckpointError::SlotCountMismatch { .. }), "{err}");
    assert_eq!(weight_bits(&mut other), before, "no partial writes on failure");
}

// ---------------------------------------------------------------------------
// Train states (`TrainState`, the ADRS format)
// ---------------------------------------------------------------------------

fn sample_state() -> (Network, Sgd, TrainState) {
    let mut net = reuse_net(7);
    let mut sgd = Sgd::constant(0.05);
    let mut rng = AdrRng::seeded(70);
    let x = Tensor4::from_fn(4, 6, 6, 1, |_, _, _, _| rng.gauss());
    for _ in 0..3 {
        net.train_batch(&x, &[0, 1, 2, 0], &mut sgd);
    }
    let state = TrainState::capture(&mut net, &sgd, Strategy::fixed(3, 6), 3);
    (net, sgd, state)
}

#[test]
fn train_state_truncations_are_typed() {
    let (_, _, state) = sample_state();
    let bytes = state.to_bytes();
    for cut in [2, 6, 20, bytes.len() / 2 + 1, bytes.len() - 3] {
        let err = TrainState::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, StateError::Truncated(_)),
            "cut at {cut}: expected truncation, got {err}"
        );
    }
}

#[test]
fn train_state_bad_magic_and_version_are_typed() {
    let (_, _, state) = sample_state();
    let bytes = state.to_bytes();
    let mut bad = bytes.clone();
    bad[2] ^= 0x20;
    assert!(matches!(TrainState::from_bytes(&bad).unwrap_err(), StateError::BadMagic));
    let mut bad = bytes;
    bad[4] = 77;
    assert!(matches!(
        TrainState::from_bytes(&bad).unwrap_err(),
        StateError::UnsupportedVersion(77)
    ));
}

#[test]
fn train_state_per_section_crc_catches_payload_corruption() {
    let (_, _, state) = sample_state();
    let bytes = state.to_bytes();
    // Flip one bit in every byte position of the PRMS section's payload
    // region and demand a typed failure each time. Section layout after
    // the 8-byte header: 16-byte section header then payload.
    let meta_payload_start = 8 + 16;
    let mut checked = 0;
    for pos in (meta_payload_start..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        if TrainState::from_bytes(&bad).is_ok() {
            panic!("flipped bit at byte {pos} went undetected");
        }
        checked += 1;
    }
    assert!(checked > 10, "sampled too few positions");
}

#[test]
fn train_state_trailing_bytes_are_rejected() {
    let (_, _, state) = sample_state();
    let mut bytes = state.to_bytes();
    bytes.push(0);
    assert!(matches!(TrainState::from_bytes(&bytes).unwrap_err(), StateError::TrailingBytes));
}

#[test]
fn failed_train_state_restore_leaves_network_untouched() {
    let (_, _, state) = sample_state();
    let mut rng = AdrRng::seeded(80);
    let mut other = Network::new((6, 6, 1));
    other.push(Box::new(Dense::new("fc", 36, 3, &mut rng)));
    let mut sgd = Sgd::constant(0.05);
    let before = weight_bits(&mut other);
    let step_before = sgd.step_count();
    let err = state.restore_model(&mut other, &mut sgd).unwrap_err();
    assert!(matches!(err, StateError::LayerCountMismatch { .. }), "{err}");
    assert_eq!(weight_bits(&mut other), before, "no partial writes on failure");
    assert_eq!(sgd.step_count(), step_before, "optimiser untouched on failure");
}

#[test]
fn corrupt_file_on_disk_fails_closed_via_load() {
    let (_, _, state) = sample_state();
    let dir = std::env::temp_dir().join("adr_corrupt_checkpoint");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.bin");
    state.save(&path).unwrap();

    // Corrupt the file in place (as a crashed disk or bad sector would).
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();
    assert!(TrainState::load(&path).is_err(), "corrupted file must not load");

    // Missing file: typed I/O error, not a panic.
    let missing = dir.join("does_not_exist.bin");
    assert!(matches!(TrainState::load(&missing).unwrap_err(), StateError::Io(_)));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Non-finite plateau state: a checkpoint carrying a NaN/-inf detector window
// would silently disarm adaptation after resume (NaN comparisons are always
// false), so deserialization rejects it outright.
// ---------------------------------------------------------------------------

use adaptive_deep_reuse::adaptive::controller::ControllerState;
use adaptive_deep_reuse::nn::metrics::PlateauState;

fn poisoned_roundtrip(mutate: impl FnOnce(&mut TrainState)) -> StateError {
    let (_, _, mut state) = sample_state();
    mutate(&mut state);
    TrainState::from_bytes(&state.to_bytes()).unwrap_err()
}

#[test]
fn nan_plateau_smoothed_loss_is_typed() {
    let err = poisoned_roundtrip(|state| {
        state.controller = Some(ControllerState {
            stage: 1,
            plateau: PlateauState { smoothed: Some(f32::NAN), best: 1.0, stale: 0, seen: 2 },
        });
    });
    assert!(matches!(err, StateError::Malformed(_)), "expected Malformed, got {err}");
    assert!(err.to_string().contains("not finite"), "unexpected message: {err}");
}

#[test]
fn nan_plateau_best_loss_is_typed() {
    let err = poisoned_roundtrip(|state| {
        state.cr_plateau =
            Some(PlateauState { smoothed: Some(0.5), best: f32::NAN, stale: 1, seen: 3 });
    });
    assert!(matches!(err, StateError::Malformed(_)), "expected Malformed, got {err}");
}

#[test]
fn negative_infinite_plateau_best_is_typed() {
    let err = poisoned_roundtrip(|state| {
        state.controller = Some(ControllerState {
            stage: 0,
            plateau: PlateauState {
                smoothed: Some(0.5),
                best: f32::NEG_INFINITY,
                stale: 0,
                seen: 1,
            },
        });
    });
    assert!(matches!(err, StateError::Malformed(_)), "expected Malformed, got {err}");
}

#[test]
fn positive_infinite_plateau_best_still_roundtrips() {
    // `+inf` is the legitimate "no best yet" sentinel a fresh detector
    // starts from; rejecting it would break resuming an early checkpoint.
    let (_, _, mut state) = sample_state();
    let plateau = PlateauState { smoothed: None, best: f32::INFINITY, stale: 0, seen: 0 };
    state.controller = Some(ControllerState { stage: 0, plateau });
    let restored = TrainState::from_bytes(&state.to_bytes()).unwrap();
    assert_eq!(restored.controller, Some(ControllerState { stage: 0, plateau }));
}
