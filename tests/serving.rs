//! End-to-end serving robustness: the degradation ladder under injected
//! overload, typed rejection of poisoned and malformed requests, output
//! quarantine, corrupt-checkpoint loads, health probes, and the accuracy
//! contract of the most aggressive reuse stage.
//!
//! Everything runs on the virtual [`ManualClock`], so "load" is scripted
//! through [`ServeFaultPlan`] stalls and every assertion is deterministic.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::serve::LadderConfig;

fn synth_dataset(seed: u64, num_images: usize) -> SynthDataset {
    let cfg = SynthConfig {
        num_images,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 1,
        image_variability: 0.5,
    };
    SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed))
}

fn single_image(dataset: &SynthDataset, index: usize) -> Tensor4 {
    let (image, _) = dataset.batch(index, 1);
    image
}

/// Trains a dense CifarNet briefly and saves an `ADR1` checkpoint; returns
/// the checkpoint path and the dataset it was trained on.
fn trained_checkpoint(name: &str, iterations: usize) -> (std::path::PathBuf, SynthDataset) {
    let dataset = synth_dataset(42, 160);
    let mut rng = AdrRng::seeded(42);
    let mut net = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    let mut sgd = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0).with_clip_norm(5.0);
    for it in 0..iterations {
        let (images, labels) = dataset.batch(it, 16);
        net.train_batch(&images, &labels, &mut sgd);
    }
    let path = std::env::temp_dir().join(name);
    Checkpoint::capture(&mut net).save(&path).unwrap();
    (path, dataset)
}

/// Fresh reuse-mode net with the trained checkpoint restored into it.
fn restored_reuse_net(path: &std::path::Path) -> Network {
    let mut rng = AdrRng::seeded(7);
    let mut net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    Checkpoint::load(path).unwrap().restore(&mut net).unwrap();
    net
}

#[test]
fn overload_walks_the_ladder_and_sheds_with_typed_backpressure() {
    let dataset = synth_dataset(11, 32);
    let mut rng = AdrRng::seeded(3);
    let net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let cfg = EngineConfig {
        queue_capacity: 8,
        max_batch: 2,
        default_deadline: Duration::from_secs(10),
        target_batch_latency: Duration::from_millis(50),
        ladder: LadderConfig { alpha: 1.0, min_dwell: 1, ..LadderConfig::default() },
    };
    let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();
    // Three consecutive slow batches: pressure 4x the target each time.
    engine.set_fault_plan(
        ServeFaultPlan::new()
            .inject_at_batch(0, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(1, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(2, ServeFaultKind::SlowBatch { stall_ms: 200 }),
    );

    // Fill the queue, then keep pushing: the excess must shed, typed.
    for i in 0..8 {
        engine.submit(&single_image(&dataset, i)).unwrap();
    }
    for i in 8..11 {
        let err = engine.submit(&single_image(&dataset, i)).unwrap_err();
        assert!(
            matches!(
                err,
                RequestError::Overloaded { depth: 8, capacity: 8, retry_after } if retry_after > Duration::ZERO
            ),
            "expected typed backpressure with a backoff hint, got {err:?}"
        );
    }

    // Serve the 4 micro-batches, tracking the stage each ran at and the
    // marginal FLOP savings of each batch.
    let mut stages = Vec::new();
    let mut marginal_savings = Vec::new();
    let mut prev = (0u64, 0u64);
    for _ in 0..4 {
        stages.push(engine.stage());
        for (_, outcome) in engine.poll() {
            let resp = outcome.expect("no deadline was tight enough to miss");
            assert!(
                resp.logits.iter().all(|v| v.is_finite()),
                "non-finite logits surfaced at stage {}",
                resp.stage
            );
        }
        let report = engine.report();
        let actual = report.flops_actual - prev.0;
        let exact = report.flops_exact - prev.1;
        prev = (report.flops_actual, report.flops_exact);
        marginal_savings.push(1.0 - actual as f64 / exact as f64);
    }

    // The ladder degraded one stage per hot batch: 0 -> 1 -> 2 -> 3.
    assert_eq!(stages, vec![0, 1, 2, 3], "ladder did not walk stage by stage");
    let report = engine.report();
    assert_eq!(report.degraded_steps, 3);
    assert_eq!(report.shed_overloaded, 3);
    assert_eq!(report.completed, 8);
    assert_eq!(report.events_of(ServeEventKind::SlowBatchFault), 3);
    assert_eq!(report.events_of(ServeEventKind::Degraded), 3);
    assert_eq!(report.events_of(ServeEventKind::Overloaded), 3);
    assert_eq!(report.requests_per_stage, vec![2, 2, 2, 2]);

    // Each degradation step buys more FLOPs: marginal savings rise with
    // the stage (stage 0 is the exact path, which *costs* hashing overhead).
    for window in marginal_savings.windows(2) {
        assert!(window[1] > window[0], "marginal FLOP savings did not rise: {marginal_savings:?}");
    }
}

#[test]
fn calm_traffic_recovers_back_toward_the_exact_stage() {
    let dataset = synth_dataset(12, 40);
    let mut rng = AdrRng::seeded(4);
    let net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let cfg = EngineConfig {
        queue_capacity: 8,
        max_batch: 4,
        default_deadline: Duration::from_secs(10),
        target_batch_latency: Duration::from_millis(50),
        ladder: LadderConfig { alpha: 1.0, min_dwell: 1, ..LadderConfig::default() },
    };
    let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();
    engine.set_fault_plan(
        ServeFaultPlan::new()
            .inject_at_batch(0, ServeFaultKind::SlowBatch { stall_ms: 300 })
            .inject_at_batch(1, ServeFaultKind::SlowBatch { stall_ms: 300 }),
    );
    // Two hot batches degrade; calm batches afterwards walk back to 0.
    for i in 0..32 {
        engine.submit(&single_image(&dataset, i)).unwrap();
        let _ = engine.poll();
    }
    engine.drain();
    assert_eq!(engine.stage(), 0, "engine did not recover to the exact stage");
    let report = engine.report();
    assert!(report.degraded_steps >= 2);
    assert!(report.recovered_steps >= report.degraded_steps);
    assert!(report.events_of(ServeEventKind::Recovered) >= 2);
}

#[test]
fn poisoned_and_malformed_requests_are_rejected_at_admission() {
    let dataset = synth_dataset(13, 8);
    let mut rng = AdrRng::seeded(5);
    let net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let mut engine =
        Engine::with_clock(net, EngineConfig::default(), Box::new(ManualClock::new())).unwrap();
    // The fault plan poisons the next two submissions before validation.
    engine.set_fault_plan(ServeFaultPlan::new().poison_requests(2));

    for _ in 0..2 {
        let err = engine.submit(&single_image(&dataset, 0)).unwrap_err();
        assert!(matches!(err, RequestError::NonFiniteInput { index: 0, .. }), "got {err:?}");
    }
    // A directly poisoned pixel is caught the same way.
    let mut nan_image = single_image(&dataset, 1);
    nan_image.as_mut_slice()[42] = f32::NEG_INFINITY;
    assert!(matches!(
        engine.submit(&nan_image),
        Err(RequestError::NonFiniteInput { index: 42, .. })
    ));
    // Wrong shape and multi-image tensors never reach the queue either.
    assert!(matches!(
        engine.submit(&Tensor4::zeros(1, 8, 8, 3)),
        Err(RequestError::ShapeMismatch { expected: (16, 16, 3), found: (8, 8, 3) })
    ));
    assert!(matches!(
        engine.submit(&Tensor4::zeros(2, 16, 16, 3)),
        Err(RequestError::NotSingleImage { batch: 2 })
    ));

    // Clean traffic still flows afterwards, and nothing poisoned got logits.
    let ok = engine.submit(&single_image(&dataset, 2)).unwrap();
    let results = engine.drain();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, ok);
    assert!(results[0].1.as_ref().unwrap().logits.iter().all(|v| v.is_finite()));
    let report = engine.report();
    assert_eq!(report.admitted, 1);
    assert_eq!(report.rejected_non_finite, 3);
    assert_eq!(report.rejected_shape, 2);
    assert_eq!(report.events_of(ServeEventKind::PoisonFault), 2);
    assert_eq!(report.events_of(ServeEventKind::RejectedInput), 5);
}

#[test]
fn injected_output_poison_is_quarantined_and_retried_on_the_exact_path() {
    let (path, dataset) = trained_checkpoint("adr_serving_quarantine.adr1", 10);
    let net = restored_reuse_net(&path);
    let cfg = EngineConfig { max_batch: 4, ..EngineConfig::default() };
    let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();
    engine.set_fault_plan(ServeFaultPlan::new().inject_at_batch(0, ServeFaultKind::PoisonOutput));
    for i in 0..4 {
        engine.submit(&single_image(&dataset, i)).unwrap();
    }
    for (_, outcome) in engine.drain() {
        let resp = outcome.expect("exact retry clears injected output poison");
        assert!(resp.logits.iter().all(|v| v.is_finite()), "poison surfaced to a caller");
    }
    let report = engine.report();
    assert_eq!(report.quarantined_batches, 1);
    assert_eq!(report.retried_batches, 1);
    assert_eq!(report.failed_non_finite, 0);
    assert_eq!(report.events_of(ServeEventKind::QuarantinedBatch), 1);
    assert_eq!(report.events_of(ServeEventKind::RetriedExact), 1);
    assert!(engine.healthy());
    std::fs::remove_file(&path).ok();
}

/// (Gated off under `--features checked`: the invariant layer panics on
/// the NaN inside the dense forward before the engine's output sanitizer
/// can quarantine it, by design.)
#[cfg(not(feature = "checked"))]
#[test]
fn persistent_weight_poison_fails_batches_typed_and_flips_the_health_probe() {
    let dataset = synth_dataset(14, 8);
    let mut rng = AdrRng::seeded(6);
    let mut net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    // Poison the classifier head: no ReLU downstream launders it, so the
    // logits stay NaN even on the exact GEMM retry.
    if let Some(last) = net.layers_mut().last_mut() {
        for param in last.params_mut() {
            if let Some(w) = param.data.first_mut() {
                *w = f32::NAN;
            }
        }
    }
    let mut engine =
        Engine::with_clock(net, EngineConfig::default(), Box::new(ManualClock::new())).unwrap();
    assert!(engine.healthy());
    for batch in 0..3 {
        engine.submit(&single_image(&dataset, batch)).unwrap();
        let results = engine.poll();
        assert!(
            matches!(results[0].1, Err(RequestError::NonFiniteOutput { .. })),
            "batch {batch}: poisoned output must fail typed, got {:?}",
            results[0].1
        );
    }
    let report = engine.report();
    assert_eq!(report.quarantined_batches, 3);
    assert_eq!(report.retried_batches, 3);
    assert_eq!(report.failed_non_finite, 3);
    assert_eq!(report.completed, 0);
    assert!(!engine.healthy(), "three consecutive poisoned batches must flip the health probe");
    assert!(engine.ready(), "readiness is about construction, not health");
}

#[test]
fn corrupt_checkpoint_bytes_fail_the_load_with_a_typed_error() {
    let (path, _) = trained_checkpoint("adr_serving_corrupt.adr1", 5);
    let mut rng = AdrRng::seeded(8);
    let net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let err = Engine::load_checkpoint_with_faults(
        &path,
        net,
        EngineConfig::default(),
        ServeFaultPlan::new().corrupt_checkpoint_load(),
    )
    .err()
    .expect("a flipped byte must not load");
    assert!(matches!(err, EngineError::Checkpoint(_)), "got {err:?}");

    // The same file loads fine without the fault: the corruption was
    // injected, not real.
    let mut rng = AdrRng::seeded(8);
    let net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    assert!(Engine::load_checkpoint(&path, net, EngineConfig::default()).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn deadline_budgets_are_enforced_per_request() {
    let dataset = synth_dataset(15, 8);
    let mut rng = AdrRng::seeded(9);
    let net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let cfg = EngineConfig { max_batch: 2, ..EngineConfig::default() };
    let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();
    engine.set_fault_plan(
        ServeFaultPlan::new().inject_at_batch(0, ServeFaultKind::SlowBatch { stall_ms: 100 }),
    );
    // Same batch, different budgets: one misses, one survives.
    let tight =
        engine.submit_with_deadline(&single_image(&dataset, 0), Duration::from_millis(20)).unwrap();
    let loose = engine
        .submit_with_deadline(&single_image(&dataset, 1), Duration::from_millis(500))
        .unwrap();
    let results = engine.poll();
    let by_id = |id: u64| results.iter().find(|(rid, _)| *rid == id).unwrap();
    assert_eq!(
        by_id(tight).1,
        Err(RequestError::DeadlineExceeded { budget_ms: 20, elapsed_ms: 100 })
    );
    assert!(by_id(loose).1.is_ok());
    assert_eq!(engine.report().deadline_missed, 1);
}

#[test]
fn exact_stage_matches_the_dense_forward_bitwise() {
    let (path, _) = trained_checkpoint("adr_serving_bitwise.adr1", 10);
    // Gaussian requests: distinct im2col rows, so the exact stage's 64-hash
    // clustering is all singletons and centroids reproduce rows exactly.
    let mut data_rng = AdrRng::seeded(100);
    let images: Vec<Tensor4> = (0..8)
        .map(|_| {
            let mut pixels = vec![0.0f32; 16 * 16 * 3];
            data_rng.fill_gauss(&mut pixels);
            Tensor4::from_vec(1, 16, 16, 3, pixels).unwrap()
        })
        .collect();

    // Reference: the same checkpoint in a plain dense net, batch of 8.
    let mut rng = AdrRng::seeded(21);
    let mut dense = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    Checkpoint::load(&path).unwrap().restore(&mut dense).unwrap();
    let mut batch8 = Tensor4::zeros(8, 16, 16, 3);
    for (i, img) in images.iter().enumerate() {
        let per = 16 * 16 * 3;
        batch8.as_mut_slice()[i * per..(i + 1) * per].copy_from_slice(img.as_slice());
    }
    let dense_logits = dense.forward(&batch8, Mode::Eval);

    // Served: reuse net pinned to a single-stage exact ladder, one batch.
    let net = restored_reuse_net(&path);
    let cfg = EngineConfig {
        max_batch: 8,
        ladder: LadderConfig { stages: vec![StagePolicy::Exact], ..LadderConfig::default() },
        ..EngineConfig::default()
    };
    let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();
    let responses = engine.serve_all(&images);

    for (i, outcome) in responses.iter().enumerate() {
        let resp = outcome.as_ref().unwrap();
        assert_eq!(resp.stage, 0);
        let reference = &dense_logits.as_slice()[i * 4..(i + 1) * 4];
        let served_bits: Vec<u32> = resp.logits.iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        assert_eq!(served_bits, reference_bits, "request {i}: exact stage is not bitwise dense");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn most_aggressive_stage_loses_at_most_the_documented_accuracy_delta() {
    let (path, dataset) = trained_checkpoint("adr_serving_accuracy.adr1", 60);
    let eval_count = 48;
    let images: Vec<Tensor4> = (0..eval_count).map(|i| single_image(&dataset, i)).collect();
    let labels: Vec<usize> = (0..eval_count).map(|i| dataset.labels()[i % dataset.len()]).collect();

    let accuracy_at = |stages: Vec<StagePolicy>| -> f32 {
        let net = restored_reuse_net(&path);
        let cfg = EngineConfig {
            queue_capacity: eval_count,
            max_batch: 8,
            ladder: LadderConfig { stages, ..LadderConfig::default() },
            ..EngineConfig::default()
        };
        let mut engine = Engine::with_clock(net, cfg, Box::new(ManualClock::new())).unwrap();
        let responses = engine.serve_all(&images);
        let correct = responses
            .iter()
            .zip(&labels)
            .filter(|(r, &label)| r.as_ref().map(|resp| resp.class) == Ok(label))
            .count();
        correct as f32 / eval_count as f32
    };

    let exact = accuracy_at(vec![StagePolicy::Exact]);
    // The bottom rung of the default ladder: the most aggressive stage.
    let aggressive = accuracy_at(vec![StagePolicy::Reuse {
        sub_vector_len: 8,
        num_hashes: 8,
        cluster_reuse: true,
    }]);

    assert!(exact > 0.5, "dense-trained model should beat chance, got {exact}");
    // DESIGN.md documents the serving contract: the most aggressive stage
    // loses at most 0.2 accuracy against the exact path.
    assert!(
        exact - aggressive <= 0.2,
        "aggressive stage lost too much: exact {exact}, aggressive {aggressive}"
    );
    std::fs::remove_file(&path).ok();
}

/// `min_dwell` edge: smoothed pressure sitting *exactly* on either
/// threshold never moves the ladder — both comparisons are strict, so an
/// oscillation pinned to the boundary values is stable, not a flap.
#[test]
fn pressure_exactly_at_the_thresholds_never_moves_the_ladder() {
    use adaptive_deep_reuse::serve::{DegradationLadder, LadderMove};
    // alpha 1.0 makes the EMA track the latest observation; thresholds and
    // observations are all exactly representable (0.5, 1.0, 2.0), so the
    // incremental EMA update `mean += alpha * (x - mean)` stays bitwise
    // exact and the test controls the smoothed pressure precisely.
    let cfg =
        LadderConfig { alpha: 1.0, min_dwell: 1, recover_below: 0.5, ..LadderConfig::default() };
    assert_eq!(cfg.degrade_above, 1.0);
    let mut ladder = DegradationLadder::new(cfg.clone()).unwrap();
    for _ in 0..4 {
        assert_eq!(ladder.observe(1.0, 0.0), None, "pressure == degrade_above holds");
    }
    assert_eq!(ladder.stage(), 0);

    // From a degraded stage, pressure exactly at recover_below also holds.
    let mut ladder = DegradationLadder::new(cfg).unwrap();
    assert_eq!(ladder.observe(2.0, 0.0), Some(LadderMove::Degraded { from: 0, to: 1 }));
    for _ in 0..4 {
        assert_eq!(ladder.observe(0.5, 0.0), None, "pressure == recover_below holds");
    }
    // Oscillating exactly between the two boundary values: still no move.
    for _ in 0..4 {
        assert_eq!(ladder.observe(1.0, 0.0), None);
        assert_eq!(ladder.observe(0.5, 0.0), None);
    }
    assert_eq!(ladder.stage(), 1);
}

/// `min_dwell` edge: when the dwell expires on the same tick the pressure
/// flips, the decision uses the *new* pressure — a spike observed during
/// the dwell window does not fire a deferred move, and a flip landing on
/// the expiry tick moves immediately.
#[test]
fn dwell_expiring_on_the_same_tick_as_a_pressure_flip_uses_the_new_pressure() {
    use adaptive_deep_reuse::serve::{DegradationLadder, LadderMove};
    let cfg = LadderConfig { alpha: 1.0, min_dwell: 2, ..LadderConfig::default() };
    let mut ladder = DegradationLadder::new(cfg).unwrap();

    // Tick 1: hot, but still inside the dwell window — no move.
    assert_eq!(ladder.observe(5.0, 0.0), None);
    // Tick 2: the dwell expires on the very tick the pressure flips calm.
    // The tick-1 spike must not fire retroactively.
    assert_eq!(ladder.observe(0.0, 0.0), None, "no deferred degrade from the spiked tick");
    assert_eq!(ladder.stage(), 0);

    // Walk to stage 1 (dwell already satisfied, pressure high again).
    assert_eq!(ladder.observe(5.0, 0.0), Some(LadderMove::Degraded { from: 0, to: 1 }));
    // Tick inside the fresh dwell window: high pressure, no move.
    assert_eq!(ladder.observe(5.0, 0.0), None);
    // Dwell expires exactly as the pressure flips below recover_below:
    // the recovery fires on this same tick, not one tick later.
    assert_eq!(ladder.observe(0.2, 0.0), Some(LadderMove::Recovered { from: 1, to: 0 }));
    assert_eq!(ladder.stage(), 0);
}
