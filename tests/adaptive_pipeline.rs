//! Integration tests of the adaptive machinery on real model topologies:
//! policies → candidate lists → controller → trainer, end to end.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::controller::AdaptiveController;
use adaptive_deep_reuse::adaptive::policy::{HRange, LRange};
use adaptive_deep_reuse::adaptive::trainer::{BatchSource, Trainer, TrainerConfig};
use adaptive_deep_reuse::adaptive::{CandidateList, Strategy};
use adaptive_deep_reuse::models::{cifarnet, vgg19, ConvMode};
use adaptive_deep_reuse::nn::{LrSchedule, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::source::DatasetSource;

fn small_dataset(seed: u64, n: usize, classes: usize) -> SynthDataset {
    let cfg = SynthConfig {
        num_images: n,
        num_classes: classes,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 2,
        image_variability: 0.4,
    };
    SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed))
}

#[test]
fn policy_ranges_for_cifarnet_layers_are_sane() {
    // conv1: kw=5, Ic=3, first layer.
    let l1 = LRange::from_geometry(5, 3, true);
    assert_eq!((l1.min(), l1.max()), (5, 10));
    // conv2: kw=5, Ic=64.
    let l2 = LRange::from_geometry(5, 64, false);
    assert_eq!((l2.min(), l2.max()), (5, 40));
    // H range for a 16-image batch of 16x16 inputs (conv1: N = 16*16*16).
    let h = HRange::from_rows(16 * 16 * 16, 8);
    assert!(h.min() >= 1 && h.max() <= 64 && h.min() <= h.max());
    // Candidate list ties them together.
    let c = CandidateList::build(&l2, &h, 64);
    assert_eq!(*c.settings().first().unwrap(), (l2.max(), h.min()));
    assert_eq!(*c.settings().last().unwrap(), (l2.min(), h.max()));
}

#[test]
fn controller_covers_every_reuse_layer_of_vgg19() {
    let mut rng = AdrRng::seeded(1);
    let mut net = vgg19::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let controller = AdaptiveController::for_network(&mut net, 8, 4, 4, 0.01, 0, false).unwrap();
    assert_eq!(controller.plans().len(), 16, "all 16 conv layers planned");
    // Every plan's schedule is non-trivial and monotone.
    for plan in controller.plans() {
        assert!(!plan.candidates.is_empty());
        for w in plan.candidates.settings().windows(2) {
            assert!(w[1].0 <= w[0].0 && w[1].1 >= w[0].1);
        }
    }
}

#[test]
fn adaptive_training_switches_and_saves_flops_on_cifarnet() {
    let mut rng = AdrRng::seeded(2);
    let dataset = small_dataset(3, 160, 4);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let trainer = Trainer::new(TrainerConfig {
        max_iterations: 120,
        eval_every: 10,
        plateau_patience: 4,
        plateau_min_delta: 0.01,
        plateau_warmup: 10,
        ..Default::default()
    });
    let mut sgd = Sgd::new(LrSchedule::Constant(0.02), 0.9, 0.0).with_clip_norm(5.0);
    let report = trainer.train(&mut net, Strategy::adaptive(), &mut source, &mut sgd).unwrap();
    assert!(!report.switches.is_empty(), "controller must switch at least once");
    assert!(report.flop_savings() > 0.3, "flop savings {}", report.flop_savings());
    assert!(report.final_accuracy.is_finite());
}

#[test]
fn all_four_strategies_produce_finite_trainings() {
    let runs = [
        (ConvMode::Dense, Strategy::baseline()),
        (
            ConvMode::Reuse(adaptive_deep_reuse::reuse::ReuseConfig::new(5, 10, false)),
            Strategy::fixed(5, 10),
        ),
        (ConvMode::reuse_default(), Strategy::adaptive()),
        (
            ConvMode::Reuse(adaptive_deep_reuse::reuse::ReuseConfig::new(5, 10, true)),
            Strategy::cluster_reuse(5, 10),
        ),
    ];
    for (mode, strategy) in runs {
        let mut rng = AdrRng::seeded(4);
        let dataset = small_dataset(5, 96, 4);
        let mut source = DatasetSource::new(dataset, 16, 16);
        let mut net = cifarnet::bench_scale(4, mode, &mut rng);
        let trainer = Trainer::new(TrainerConfig {
            max_iterations: 40,
            eval_every: 10,
            plateau_patience: 4,
            plateau_warmup: 8,
            ..Default::default()
        });
        let mut sgd = Sgd::new(LrSchedule::Constant(0.02), 0.9, 0.0).with_clip_norm(5.0);
        let report = trainer.train(&mut net, strategy, &mut source, &mut sgd).unwrap();
        assert_eq!(report.iterations_run, 40);
        assert!(report.final_loss.is_finite(), "{}: loss diverged", report.strategy);
        if strategy.uses_reuse() {
            assert!(
                report.actual_flops.total() < report.baseline_flops.total(),
                "{} did not save work",
                report.strategy
            );
        }
    }
}

#[test]
fn probe_batch_is_disjoint_from_training_stream() {
    let dataset = small_dataset(6, 64, 4);
    let mut source = DatasetSource::new(dataset, 16, 16);
    let (probe, _) = source.probe();
    for b in 0..source.num_batches() {
        let (batch, _) = source.batch(b);
        for i in 0..batch.batch() {
            for j in 0..probe.batch() {
                assert_ne!(
                    batch.image(i).as_slice(),
                    probe.image(j).as_slice(),
                    "training image {i} of batch {b} equals probe image {j}"
                );
            }
        }
    }
}
