//! Fault-tolerance integration tests: the kill-and-resume determinism
//! guarantee, guardrail rollback + reuse tightening under injected faults,
//! and bounded-retry checkpoint writes.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::time::Duration;

use adaptive_deep_reuse::nn::dense::Dense;
use adaptive_deep_reuse::nn::durable::RetryPolicy;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::tensor::im2col::ConvGeom;

fn toy_source(seed: u64) -> DatasetSource {
    let mut rng = AdrRng::seeded(seed);
    let dataset = SynthDataset::generate(
        &SynthConfig {
            num_images: 56,
            num_classes: 3,
            height: 6,
            width: 6,
            channels: 1,
            smoothing_passes: 2,
            noise_std: 0.05,
            max_shift: 1,
            image_variability: 0.4,
        },
        &mut rng,
    );
    DatasetSource::new(dataset, 6, 8)
}

fn reuse_net(seed: u64) -> Network {
    let mut rng = AdrRng::seeded(seed);
    let mut net = Network::new((6, 6, 1));
    let g = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
    net.push(Box::new(ReuseConv2d::new("conv1", g, 6, ReuseConfig::new(3, 6, false), &mut rng)));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Dense::new("fc", 4 * 4 * 6, 3, &mut rng)));
    net
}

fn quick_trainer(max_iterations: usize) -> Trainer {
    Trainer::new(TrainerConfig {
        max_iterations,
        eval_every: 10,
        plateau_patience: 5,
        plateau_min_delta: 0.01,
        ..Default::default()
    })
}

/// Everything the determinism guarantee covers, in bit-exact form.
#[derive(Debug, PartialEq)]
struct RunTrace {
    weight_bits: Vec<Vec<u32>>,
    velocity_bits: Vec<Vec<u32>>,
    cluster_bits: Vec<(u64, u64)>,
    flops: (u64, u64),
}

fn trace(net: &mut Network, sgd: &Sgd) -> RunTrace {
    let flops = (net.flops().total(), net.baseline_flops().total());
    let state = TrainState::capture(net, sgd, Strategy::adaptive(), 0);
    let to_bits = |slots: &[Vec<f32>]| {
        slots.iter().map(|s| s.iter().map(|v| v.to_bits()).collect()).collect()
    };
    let mut cluster_bits = Vec::new();
    for layer in net.layers_mut() {
        if let Some(reuse) = layer.as_any_mut().and_then(|a| a.downcast_mut::<ReuseConv2d>()) {
            let s = reuse.stats();
            cluster_bits.push((s.avg_clusters.to_bits(), s.avg_remaining_ratio.to_bits()));
        }
    }
    RunTrace {
        weight_bits: to_bits(&state.params),
        velocity_bits: to_bits(&state.velocity),
        cluster_bits,
        flops,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("adr_fault_tolerance");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The headline guarantee: a run that is killed mid-flight and resumed
/// from its last checkpoint finishes bitwise-identical to one that was
/// never interrupted — weights, momentum, cluster statistics, and FLOP
/// counters all match exactly, under the adaptive strategy.
#[test]
fn kill_and_resume_is_bitwise_identical() {
    let trainer = quick_trainer(60);

    // Run A: uninterrupted.
    let mut net_a = reuse_net(7);
    let mut sgd_a = Sgd::constant(0.05);
    let mut source_a = toy_source(70);
    let full = trainer.train(&mut net_a, Strategy::adaptive(), &mut source_a, &mut sgd_a).unwrap();

    // Run B: checkpoints every 10 iterations, killed after 35.
    let ckpt = temp_path("kill_resume_state.bin");
    std::fs::remove_file(&ckpt).ok();
    let mut net_b = reuse_net(7);
    let mut sgd_b = Sgd::constant(0.05);
    let mut source_b = toy_source(70);
    let first = trainer
        .train_with(
            &mut net_b,
            Strategy::adaptive(),
            &mut source_b,
            &mut sgd_b,
            TrainOptions {
                checkpoint: Some(CheckpointPolicy::new(&ckpt, 10)),
                halt_after: Some(35),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(first.interrupted, "halt_after must mark the report interrupted");
    assert_eq!(first.iterations_run, 35);

    // Run C: a fresh process — new network, optimiser, and source, state
    // loaded from the file Run B left behind.
    let state = TrainState::load(&ckpt).unwrap();
    assert_eq!(state.iteration, 30, "last checkpoint boundary before the kill");
    let mut net_c = reuse_net(7);
    let mut sgd_c = Sgd::constant(0.05);
    let mut source_c = toy_source(70);
    let resumed = trainer
        .train_with(
            &mut net_c,
            Strategy::adaptive(),
            &mut source_c,
            &mut sgd_c,
            TrainOptions { resume: Some(state), ..Default::default() },
        )
        .unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.iterations_run, full.iterations_run);
    assert_eq!(
        resumed.switches,
        full.switches.iter().skip_while(|s| s.iteration < 30).cloned().collect::<Vec<_>>()
    );

    assert_eq!(
        trace(&mut net_a, &sgd_a),
        trace(&mut net_c, &sgd_c),
        "resumed run must be bitwise-identical to the uninterrupted one"
    );
    std::fs::remove_file(&ckpt).ok();
}

/// Injected NaN triggers detection, rollback to the last good snapshot,
/// and reuse tightening — and the run still learns the toy task.
/// (Gated off under `--features checked`: the invariant layer panics on
/// the injected NaN before the guardrail can see it, by design.)
#[cfg(not(feature = "checked"))]
#[test]
fn nan_fault_rolls_back_tightens_and_still_learns() {
    let trainer = quick_trainer(120);
    let mut net = reuse_net(9);
    let mut sgd = Sgd::constant(0.05);
    let mut source = toy_source(90);
    let mut plan = FaultPlan::new().inject_at(40, FaultKind::NanWeights);
    let report = trainer
        .train_with(
            &mut net,
            Strategy::adaptive(),
            &mut source,
            &mut sgd,
            TrainOptions {
                guardrails: Some(GuardrailConfig { snapshot_every: 10, ..Default::default() }),
                faults: Some(&mut plan),
                ..Default::default()
            },
        )
        .unwrap();
    let kinds: Vec<_> = report.guardrail_events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&GuardrailEventKind::FaultInjected), "{kinds:?}");
    assert!(
        kinds.contains(&GuardrailEventKind::NonFiniteParams)
            || kinds.contains(&GuardrailEventKind::NonFiniteLoss),
        "the poisoned run must be detected: {kinds:?}"
    );
    assert!(kinds.contains(&GuardrailEventKind::RolledBack), "{kinds:?}");
    assert!(
        kinds.contains(&GuardrailEventKind::StageTightened)
            || kinds.contains(&GuardrailEventKind::ExactFallback),
        "rollback must tighten the reuse knobs: {kinds:?}"
    );
    let state = TrainState::capture(&mut net, &sgd, Strategy::adaptive(), 0);
    assert!(state.params.iter().flatten().all(|v| v.is_finite()), "weights must be clean again");
    assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
}

/// A degenerate clustering (every row collapsed into one giant cluster)
/// is detected from the reuse statistics; with no adaptive controller to
/// tighten, recovery lands on the exact im2col GEMM fallback.
#[test]
fn degenerate_clustering_falls_back_to_exact() {
    let trainer = quick_trainer(80);
    let mut net = reuse_net(11);
    let mut sgd = Sgd::constant(0.05);
    let mut source = toy_source(110);
    let mut plan = FaultPlan::new().inject_at(
        30,
        FaultKind::DegenerateClusters(
            adaptive_deep_reuse::reuse::DegenerateClustering::OneGiantCluster,
        ),
    );
    let report = trainer
        .train_with(
            &mut net,
            Strategy::fixed(3, 6),
            &mut source,
            &mut sgd,
            TrainOptions {
                guardrails: Some(GuardrailConfig { snapshot_every: 10, ..Default::default() }),
                faults: Some(&mut plan),
                ..Default::default()
            },
        )
        .unwrap();
    let kinds: Vec<_> = report.guardrail_events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&GuardrailEventKind::DegenerateClustering), "{kinds:?}");
    assert!(kinds.contains(&GuardrailEventKind::RolledBack), "{kinds:?}");
    assert!(
        kinds.contains(&GuardrailEventKind::ExactFallback),
        "fixed strategy has no controller stages; must fall back to exact: {kinds:?}"
    );
    // Exact fallback means zero savings from the fallback point on, but
    // the model must remain healthy and keep learning.
    assert!(report.final_loss.is_finite());
    assert!(report.final_accuracy > 0.6, "accuracy {}", report.final_accuracy);
}

/// Transient checkpoint-write failures are absorbed by the bounded retry;
/// the checkpoint on disk is valid afterwards.
#[test]
fn transient_checkpoint_failures_are_retried() {
    let trainer = quick_trainer(20);
    let mut net = reuse_net(13);
    let mut sgd = Sgd::constant(0.05);
    let mut source = toy_source(130);
    let ckpt = temp_path("retry_state.bin");
    std::fs::remove_file(&ckpt).ok();
    // 2 injected failures vs 3 attempts: the final attempt lands.
    let mut plan = FaultPlan::new().fail_checkpoint_writes(2);
    let mut policy = CheckpointPolicy::new(&ckpt, 20);
    policy.retry = RetryPolicy { max_attempts: 3, backoff: Duration::ZERO };
    let report = trainer
        .train_with(
            &mut net,
            Strategy::fixed(3, 6),
            &mut source,
            &mut sgd,
            TrainOptions {
                checkpoint: Some(policy),
                faults: Some(&mut plan),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(
        !report
            .guardrail_events
            .iter()
            .any(|e| e.kind == GuardrailEventKind::CheckpointWriteFailed),
        "retries should have absorbed the transient failures: {:?}",
        report.guardrail_events
    );
    let state = TrainState::load(&ckpt).unwrap();
    assert_eq!(state.iteration, 20);
    std::fs::remove_file(&ckpt).ok();
}

/// When every retry fails, the run records the failure, keeps training,
/// and the previous checkpoint file is left untouched.
#[test]
fn exhausted_checkpoint_retries_keep_old_file_and_training_alive() {
    let ckpt = temp_path("exhausted_retry_state.bin");
    std::fs::remove_file(&ckpt).ok();

    // Seed the path with a valid earlier checkpoint.
    let mut seed_net = reuse_net(15);
    let seed_sgd = Sgd::constant(0.05);
    let seed_state = TrainState::capture(&mut seed_net, &seed_sgd, Strategy::fixed(3, 6), 5);
    seed_state.save(&ckpt).unwrap();

    let trainer = quick_trainer(20);
    let mut net = reuse_net(15);
    let mut sgd = Sgd::constant(0.05);
    let mut source = toy_source(150);
    let mut plan = FaultPlan::new().fail_checkpoint_writes(100);
    let mut policy = CheckpointPolicy::new(&ckpt, 10);
    policy.retry = RetryPolicy { max_attempts: 3, backoff: Duration::ZERO };
    let report = trainer
        .train_with(
            &mut net,
            Strategy::fixed(3, 6),
            &mut source,
            &mut sgd,
            TrainOptions {
                checkpoint: Some(policy),
                faults: Some(&mut plan),
                ..Default::default()
            },
        )
        .unwrap();
    let failures: Vec<_> = report
        .guardrail_events
        .iter()
        .filter(|e| e.kind == GuardrailEventKind::CheckpointWriteFailed)
        .collect();
    assert_eq!(failures.len(), 2, "both cadence points fail: {:?}", report.guardrail_events);
    assert_eq!(report.iterations_run, 20, "checkpoint failure must not stop training");
    // The pre-existing checkpoint survived every failed overwrite attempt.
    let survivor = TrainState::load(&ckpt).unwrap();
    assert_eq!(survivor, seed_state);
    std::fs::remove_file(&ckpt).ok();
}

/// The stateful shuffled source resumes its epoch permutation, cursor and
/// RNG stream through a full checkpoint/restore cycle.
#[test]
fn shuffled_source_resumes_identically() {
    let trainer = quick_trainer(40);
    let make_shuffled = || {
        let mut rng = AdrRng::seeded(17);
        let dataset = SynthDataset::generate(
            &SynthConfig {
                num_images: 56,
                num_classes: 3,
                height: 6,
                width: 6,
                channels: 1,
                smoothing_passes: 2,
                noise_std: 0.05,
                max_shift: 1,
                image_variability: 0.4,
            },
            &mut rng,
        );
        ShuffledSource::new(dataset, 6, 8, AdrRng::seeded(18))
    };

    let mut net_a = reuse_net(19);
    let mut sgd_a = Sgd::constant(0.05);
    let mut source_a = make_shuffled();
    let _ = trainer.train(&mut net_a, Strategy::fixed(3, 6), &mut source_a, &mut sgd_a).unwrap();

    let ckpt = temp_path("shuffled_state.bin");
    std::fs::remove_file(&ckpt).ok();
    let mut net_b = reuse_net(19);
    let mut sgd_b = Sgd::constant(0.05);
    let mut source_b = make_shuffled();
    let first = trainer
        .train_with(
            &mut net_b,
            Strategy::fixed(3, 6),
            &mut source_b,
            &mut sgd_b,
            TrainOptions {
                checkpoint: Some(CheckpointPolicy::new(&ckpt, 10)),
                halt_after: Some(20),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(first.interrupted);

    let state = TrainState::load(&ckpt).unwrap();
    assert!(!state.source_state.is_empty(), "shuffled source must persist its cursor");
    let mut net_c = reuse_net(19);
    let mut sgd_c = Sgd::constant(0.05);
    // Deliberately mis-seeded: restore_state must overwrite the RNG,
    // permutation, and cursor wholesale.
    let mut source_c = make_shuffled();
    let _ = trainer
        .train_with(
            &mut net_c,
            Strategy::fixed(3, 6),
            &mut source_c,
            &mut sgd_c,
            TrainOptions { resume: Some(state), ..Default::default() },
        )
        .unwrap();

    assert_eq!(
        trace(&mut net_a, &sgd_a),
        trace(&mut net_c, &sgd_c),
        "shuffled-source resume must replay the identical batch stream"
    );
    std::fs::remove_file(&ckpt).ok();
}
