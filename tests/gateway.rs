//! End-to-end multi-tenant gateway robustness: zero-downtime hot swap
//! under load, per-tenant degradation isolation (with a bitwise-exact
//! quiet tenant), deterministic token-bucket rejection, and typed
//! rollback of a corrupt mid-swap artifact.
//!
//! Everything runs on the virtual [`ManualClock`]; "load" is scripted
//! through [`ServeFaultPlan`] stalls, so every assertion is deterministic.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::serve::LadderConfig;

fn synth_dataset(seed: u64, num_images: usize) -> SynthDataset {
    let cfg = SynthConfig {
        num_images,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 1,
        image_variability: 0.5,
    };
    SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed))
}

fn single_image(dataset: &SynthDataset, index: usize) -> Tensor4 {
    let (image, _) = dataset.batch(index, 1);
    image
}

/// Trains a dense CifarNet briefly (seeded) and saves an `ADR1`
/// checkpoint under `name` in the temp dir; returns the path.
fn trained_checkpoint(name: &str, iterations: usize) -> std::path::PathBuf {
    let dataset = synth_dataset(42, 160);
    let mut rng = AdrRng::seeded(42);
    let mut net = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    let mut sgd = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0).with_clip_norm(5.0);
    for it in 0..iterations {
        let (images, labels) = dataset.batch(it, 16);
        net.train_batch(&images, &labels, &mut sgd);
    }
    let path = std::env::temp_dir().join(name);
    Checkpoint::capture(&mut net).save(&path).unwrap();
    path
}

/// The factory every registered model uses: a reuse-mode CifarNet at the
/// bench scale, rebuilt fresh (seeded) for each load and swap.
fn reuse_factory() -> NetFactory {
    Box::new(|| cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut AdrRng::seeded(7)))
}

/// A tenant with generous admission so only the behavior under test bites.
fn quiet_tenant() -> TenantConfig {
    TenantConfig {
        rate_per_sec: 1000,
        burst: 64,
        default_deadline: Duration::from_secs(10),
        ladder: LadderConfig::default(),
    }
}

fn manual_gateway(cfg: GatewayConfig) -> Gateway {
    Gateway::with_clock(cfg, Box::new(ManualClock::new())).unwrap()
}

/// Acceptance (a): a hot swap while requests are queued completes with
/// zero dropped or failed in-flight requests, and the new generation is
/// visible in the report.
#[test]
fn hot_swap_under_load_drops_nothing_and_bumps_the_generation() {
    let path_v0 = trained_checkpoint("adr_gateway_swap_v0.adr1", 6);
    let path_v1 = trained_checkpoint("adr_gateway_swap_v1.adr1", 12);
    let dataset = synth_dataset(11, 32);

    let cfg = GatewayConfig { queue_capacity: 16, max_batch: 2, ..GatewayConfig::default() };
    let mut gw = manual_gateway(cfg);
    gw.add_tenant("alpha", quiet_tenant()).unwrap();
    gw.register_model("cifarnet", ArtifactKind::Adr1, &path_v0, reuse_factory()).unwrap();
    assert_eq!(gw.generation("cifarnet"), Some(0));

    // Sustained load: submit, serve one batch, submit more, then swap
    // while six requests are still in flight.
    let mut submitted = Vec::new();
    for i in 0..4 {
        submitted.push(gw.submit("cifarnet", "alpha", &single_image(&dataset, i)).unwrap());
    }
    let mut answered = gw.poll();
    for i in 4..8 {
        submitted.push(gw.submit("cifarnet", "alpha", &single_image(&dataset, i)).unwrap());
    }
    assert_eq!(gw.queue_depth("cifarnet", "alpha"), Some(6), "swap happens under load");

    let generation = gw.swap("cifarnet", &path_v1).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(gw.queue_depth("cifarnet", "alpha"), Some(6), "the flip dropped nothing");

    answered.extend(gw.drain());
    assert_eq!(answered.len(), submitted.len(), "every in-flight request was answered");
    for (id, outcome) in &answered {
        let resp = outcome.as_ref().unwrap_or_else(|e| panic!("request {id} failed: {e}"));
        assert!(resp.logits.iter().all(|v| v.is_finite()));
    }

    let report = gw.report();
    let model = &report.models["cifarnet"];
    assert_eq!(model.generation, 1, "generation counter visible in the report");
    assert_eq!(model.swaps_completed, 1);
    assert_eq!(model.swaps_rolled_back, 0);
    assert_eq!(report.events_of(ServeEventKind::SwapStarted), 1);
    assert_eq!(report.events_of(ServeEventKind::SwapCompleted), 1);
    assert_eq!(report.tenants["alpha"].admitted, 8);
    assert_eq!(report.tenants["alpha"].completed, 8);
}

/// Acceptance (b): a bursting tenant walks its own ladder to the
/// aggressive stage while the quiet tenant's requests keep running the
/// exact path — bitwise equal to a dense forward of the same checkpoint.
#[test]
fn tenant_burst_degrades_only_its_own_lane_bitwise() {
    let path = trained_checkpoint("adr_gateway_isolation.adr1", 10);
    let dataset = synth_dataset(11, 32);

    // Gaussian requests for the quiet tenant: distinct im2col rows, so the
    // exact stage's clustering is all singletons (see tests/serving.rs).
    let mut data_rng = AdrRng::seeded(100);
    let quiet_images: Vec<Tensor4> = (0..8)
        .map(|_| {
            let mut pixels = vec![0.0f32; 16 * 16 * 3];
            data_rng.fill_gauss(&mut pixels);
            Tensor4::from_vec(1, 16, 16, 3, pixels).unwrap()
        })
        .collect();

    // Reference: the same checkpoint in a plain dense net, batch of 8.
    let mut rng = AdrRng::seeded(21);
    let mut dense = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    Checkpoint::load(&path).unwrap().restore(&mut dense).unwrap();
    let mut batch8 = Tensor4::zeros(8, 16, 16, 3);
    for (i, img) in quiet_images.iter().enumerate() {
        let per = 16 * 16 * 3;
        batch8.as_mut_slice()[i * per..(i + 1) * per].copy_from_slice(img.as_slice());
    }
    let dense_logits = dense.forward(&batch8, Mode::Eval);

    let cfg = GatewayConfig { queue_capacity: 16, max_batch: 8, ..GatewayConfig::default() };
    let mut gw = manual_gateway(cfg);
    // The burst tenant's ladder reacts instantly; the quiet tenant's is
    // the default. Both share the same engine replica.
    gw.add_tenant(
        "burst",
        TenantConfig {
            ladder: LadderConfig { alpha: 1.0, min_dwell: 1, ..LadderConfig::default() },
            ..quiet_tenant()
        },
    )
    .unwrap();
    gw.add_tenant("quiet", quiet_tenant()).unwrap();
    gw.register_model("cifarnet", ArtifactKind::Adr1, &path, reuse_factory()).unwrap();

    // Three stalled batches for the burst tenant: latency 4x target each,
    // so its ladder degrades one stage per batch down to the bottom rung.
    gw.set_fault_plan(
        ServeFaultPlan::new()
            .inject_at_batch(0, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(1, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(2, ServeFaultKind::SlowBatch { stall_ms: 200 }),
    );
    for round in 0..3 {
        gw.submit("cifarnet", "burst", &single_image(&dataset, round * 2)).unwrap();
        gw.submit("cifarnet", "burst", &single_image(&dataset, round * 2 + 1)).unwrap();
        for (_, outcome) in gw.poll() {
            assert!(outcome.is_ok(), "burst traffic is degraded, not failed: {outcome:?}");
        }
    }
    assert_eq!(gw.stage("cifarnet", "burst"), Some(3), "burst lane hit the aggressive rung");
    assert_eq!(gw.stage("cifarnet", "quiet"), Some(0), "quiet lane never moved");

    // The quiet tenant now serves one batch of 8 on the shared replica.
    let mut ids = Vec::new();
    for img in &quiet_images {
        ids.push(gw.submit("cifarnet", "quiet", img).unwrap());
    }
    let answers = gw.poll();
    assert_eq!(answers.len(), 8);
    for (i, (id, outcome)) in answers.iter().enumerate() {
        assert_eq!(*id, ids[i], "FIFO within the lane");
        let resp = outcome.as_ref().unwrap();
        assert_eq!(resp.stage, 0, "quiet tenant stays on the exact path");
        let reference = &dense_logits.as_slice()[i * 4..(i + 1) * 4];
        let served_bits: Vec<u32> = resp.logits.iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        assert_eq!(served_bits, reference_bits, "request {i}: quiet tenant is not bitwise dense");
    }

    let report = gw.report();
    assert_eq!(report.tenants["quiet"].requests_per_stage, vec![8, 0, 0, 0]);
    let burst_beyond_exact: u64 = report.tenants["burst"].requests_per_stage.iter().skip(1).sum();
    assert!(burst_beyond_exact > 0, "burst requests were attributed to degraded stages");
    assert!(report.events_of(ServeEventKind::Degraded) >= 3);
}

/// Acceptance (c): token-bucket rejection is deterministic under
/// `ManualClock` and carries the exact refill `retry_after`.
#[test]
fn token_bucket_rejections_are_deterministic_with_exact_retry_hints() {
    let path = trained_checkpoint("adr_gateway_bucket.adr1", 6);
    let dataset = synth_dataset(11, 8);

    let run = |stall_ms: u64| -> Vec<Result<u64, RequestError>> {
        let mut gw = manual_gateway(GatewayConfig::default());
        gw.add_tenant(
            "metered",
            TenantConfig {
                rate_per_sec: 10,
                burst: 2,
                default_deadline: Duration::from_secs(10),
                ladder: LadderConfig::default(),
            },
        )
        .unwrap();
        gw.register_model("cifarnet", ArtifactKind::Adr1, &path, reuse_factory()).unwrap();
        let mut outcomes = Vec::new();
        // Burst capacity admits two, then the bucket is empty.
        for i in 0..4 {
            outcomes.push(gw.submit("cifarnet", "metered", &single_image(&dataset, i)));
        }
        // A stalled batch advances virtual time by exactly `stall_ms`.
        gw.set_fault_plan(
            ServeFaultPlan::new().inject_at_batch(0, ServeFaultKind::SlowBatch { stall_ms }),
        );
        let _ = gw.poll();
        for i in 4..6 {
            outcomes.push(gw.submit("cifarnet", "metered", &single_image(&dataset, i)));
        }
        outcomes
    };

    let outcomes = run(100);
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok(), "burst capacity admits");
    // Empty bucket at 10 tokens/s: a whole token is exactly 100 ms away,
    // and no virtual time passes between the two rejected submissions.
    for rejected in &outcomes[2..4] {
        assert_eq!(
            rejected.clone().unwrap_err(),
            RequestError::RateLimited { retry_after: Duration::from_millis(100) }
        );
    }
    // After exactly 100 ms of virtual time one token is whole again: one
    // admit, then empty again.
    assert!(outcomes[4].is_ok(), "bucket refilled exactly one token");
    assert_eq!(
        outcomes[5].clone().unwrap_err(),
        RequestError::RateLimited { retry_after: Duration::from_millis(100) }
    );

    // Bitwise determinism: the same scripted clock reproduces the same
    // decisions; 60 ms of refill is 40 ms short of a token.
    assert_eq!(run(100), run(100));
    let outcomes = run(60);
    assert_eq!(
        outcomes[4].clone().unwrap_err(),
        RequestError::RateLimited { retry_after: Duration::from_millis(40) }
    );
}

/// Acceptance (d) + chaos: a corrupt mid-swap artifact rolls back typed,
/// the old generation keeps serving, and zero in-flight requests drop.
#[test]
fn corrupt_swap_artifact_rolls_back_typed_with_the_old_generation_serving() {
    let path_v0 = trained_checkpoint("adr_gateway_corrupt_v0.adr1", 6);
    let path_v1 = trained_checkpoint("adr_gateway_corrupt_v1.adr1", 12);
    let dataset = synth_dataset(11, 16);

    let mut gw = manual_gateway(GatewayConfig::default());
    gw.add_tenant("alpha", quiet_tenant()).unwrap();
    gw.register_model("cifarnet", ArtifactKind::Adr1, &path_v0, reuse_factory()).unwrap();

    // In-flight requests queued before the swap attempt.
    let mut ids = Vec::new();
    for i in 0..4 {
        ids.push(gw.submit("cifarnet", "alpha", &single_image(&dataset, i)).unwrap());
    }

    // The fault plan corrupts the artifact bytes as read *by the swap*.
    gw.set_fault_plan(ServeFaultPlan::new().corrupt_swap_artifact());
    let err = gw.swap("cifarnet", &path_v1).unwrap_err();
    assert!(
        matches!(err, SwapError::Load(_)),
        "corruption surfaces as a typed load rollback, got {err}"
    );
    assert_eq!(gw.generation("cifarnet"), Some(0), "old generation still live");
    assert_eq!(gw.report().models["cifarnet"].swaps_rolled_back, 1);
    assert_eq!(gw.report().events_of(ServeEventKind::SwapRolledBack), 1);

    // Zero dropped in-flight requests: everything queued still serves.
    let answered = gw.drain();
    assert_eq!(answered.len(), ids.len());
    for (id, outcome) in &answered {
        assert!(outcome.is_ok(), "request {id} failed after rollback: {outcome:?}");
    }

    // The corruption was one-shot: the same swap now verifies and flips.
    assert_eq!(gw.swap("cifarnet", &path_v1).unwrap(), 1);
    assert_eq!(gw.report().models["cifarnet"].swaps_completed, 1);
    let after = gw.submit("cifarnet", "alpha", &single_image(&dataset, 5)).unwrap();
    let served = gw.drain();
    assert_eq!(served.len(), 1);
    assert_eq!(served[0].0, after);
    assert!(served[0].1.is_ok(), "generation 1 serves");
}

/// Tenant-scoped poison hits exactly one tenant's batch, is quarantined
/// and retried on the exact path, and never surfaces to any caller.
#[test]
fn tenant_scoped_poison_is_quarantined_without_touching_other_tenants() {
    let path = trained_checkpoint("adr_gateway_poison.adr1", 6);
    let dataset = synth_dataset(11, 16);

    let mut gw = manual_gateway(GatewayConfig::default());
    gw.add_tenant("clean", quiet_tenant()).unwrap();
    gw.add_tenant("victim", quiet_tenant()).unwrap();
    gw.register_model("cifarnet", ArtifactKind::Adr1, &path, reuse_factory()).unwrap();
    gw.set_fault_plan(ServeFaultPlan::new().poison_tenant_output("victim", 1));

    for i in 0..2 {
        gw.submit("cifarnet", "clean", &single_image(&dataset, i)).unwrap();
        gw.submit("cifarnet", "victim", &single_image(&dataset, 4 + i)).unwrap();
    }
    for (id, outcome) in gw.drain() {
        let resp = outcome.unwrap_or_else(|e| panic!("request {id} failed: {e}"));
        assert!(resp.logits.iter().all(|v| v.is_finite()), "poison never surfaces");
    }

    let model_report = gw.model_report("cifarnet").unwrap();
    assert_eq!(model_report.quarantined_batches, 1, "exactly the victim's batch quarantined");
    assert_eq!(model_report.retried_batches, 1);
    let poison_events: Vec<&str> = gw
        .report()
        .events
        .iter()
        .filter(|e| e.kind == ServeEventKind::PoisonFault)
        .map(|e| e.detail.as_str())
        .collect();
    assert_eq!(poison_events.len(), 1);
    assert!(poison_events[0].contains("victim"), "the poison event names the tenant");
    assert_eq!(gw.report().tenants["clean"].completed, 2);
    assert_eq!(gw.report().tenants["victim"].completed, 2);
}

/// Fair-share admission: one tenant's flood fills only its own slice of
/// the queue, and the shed error carries the lane-relative capacity.
#[test]
fn fair_share_overload_sheds_only_the_flooding_tenant() {
    let path = trained_checkpoint("adr_gateway_fairshare.adr1", 6);
    let dataset = synth_dataset(11, 32);

    let cfg = GatewayConfig { queue_capacity: 8, max_batch: 2, ..GatewayConfig::default() };
    let mut gw = manual_gateway(cfg);
    gw.add_tenant("flood", quiet_tenant()).unwrap();
    gw.add_tenant("steady", quiet_tenant()).unwrap();
    gw.register_model("cifarnet", ArtifactKind::Adr1, &path, reuse_factory()).unwrap();

    // Two tenants share capacity 8: four slots each.
    for i in 0..4 {
        gw.submit("cifarnet", "flood", &single_image(&dataset, i)).unwrap();
    }
    let err = gw.submit("cifarnet", "flood", &single_image(&dataset, 4)).unwrap_err();
    match err {
        RequestError::Overloaded { depth, capacity, retry_after } => {
            assert_eq!((depth, capacity), (4, 4), "fair share is ceil(8/2) = 4");
            assert!(retry_after > Duration::ZERO, "shed carries a backoff hint");
        }
        other => panic!("expected fair-share shed, got {other:?}"),
    }
    // The steady tenant's slice is untouched by the flood.
    for i in 0..4 {
        gw.submit("cifarnet", "steady", &single_image(&dataset, 8 + i))
            .unwrap_or_else(|e| panic!("steady tenant was starved: {e}"));
    }
    assert_eq!(gw.report().tenants["flood"].shed_overloaded, 1);
    assert_eq!(gw.report().tenants["steady"].shed_overloaded, 0);
    for (_, outcome) in gw.drain() {
        assert!(outcome.is_ok());
    }
    // Round-robin drained both lanes to completion.
    assert_eq!(gw.report().tenants["flood"].completed, 4);
    assert_eq!(gw.report().tenants["steady"].completed, 4);
}

/// Unknown names are rejected typed, before validation or rate limiting.
#[test]
fn unknown_model_and_tenant_are_typed_rejections() {
    let path = trained_checkpoint("adr_gateway_unknown.adr1", 6);
    let dataset = synth_dataset(11, 8);

    let mut gw = manual_gateway(GatewayConfig::default());
    gw.add_tenant("alpha", quiet_tenant()).unwrap();
    gw.register_model("cifarnet", ArtifactKind::Adr1, &path, reuse_factory()).unwrap();

    let image = single_image(&dataset, 0);
    assert_eq!(
        gw.submit("resnet", "alpha", &image),
        Err(RequestError::UnknownModel { model: "resnet".into() })
    );
    assert_eq!(
        gw.submit("cifarnet", "ghost", &image),
        Err(RequestError::UnknownTenant { tenant: "ghost".into() })
    );
    assert!(gw.submit("cifarnet", "alpha", &image).is_ok());
    assert_eq!(gw.report().tenants["alpha"].admitted, 1);
}
