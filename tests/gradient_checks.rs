//! Finite-difference gradient checks through whole multi-layer networks.
//!
//! These validate the backward pass of every layer *in composition* — the
//! unit tests check layers in isolation; here the chain rule across layer
//! boundaries (including im2col/col2im folding and shape transitions) is
//! exercised end to end.
//!
//! # Registry
//!
//! This file doubles as the gradient-check registry consumed by
//! `adr-check`'s `adr::grad_coverage` lint: every type implementing
//! `Layer` with a `forward` in `crates/nn` must be named in a
//! `grad-check: <Type>` comment next to the test that exercises its
//! backward pass. Removing a marker (or adding a layer without one) fails
//! the lint.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::nn::conv::Conv2d;
use adaptive_deep_reuse::nn::dense::Dense;
use adaptive_deep_reuse::nn::lrn::Lrn;
use adaptive_deep_reuse::nn::pool::Pool2d;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::nn::softmax::softmax_cross_entropy;
use adaptive_deep_reuse::nn::{Mode, Network};
use adaptive_deep_reuse::tensor::im2col::ConvGeom;
use adaptive_deep_reuse::tensor::rng::AdrRng;
use adaptive_deep_reuse::tensor::Tensor4;

/// Loss of a network on a fixed labelled batch.
fn loss_of(net: &mut Network, x: &Tensor4, labels: &[usize]) -> f32 {
    let logits = net.forward(x, Mode::Eval);
    softmax_cross_entropy(&logits, labels).loss
}

/// Checks dL/dx against finite differences at a sample of input positions.
fn check_input_gradient(net: &mut Network, x: &Tensor4, labels: &[usize], tol: f32) {
    let logits = net.forward(x, Mode::Train);
    let out = softmax_cross_entropy(&logits, labels);
    let dx = net.backward(&out.grad);
    let base = out.loss;
    let eps = 1e-2;
    let stride = (x.len() / 7).max(1);
    for idx in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let lp = loss_of(net, &xp, labels);
        let numeric = (lp - base) / eps;
        let analytic = dx.as_slice()[idx];
        assert!(
            (numeric - analytic).abs() < tol,
            "input idx {idx}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

// grad-check: Conv2d, Relu, Pool2d, Dense
#[test]
fn conv_relu_pool_dense_chain() {
    let mut rng = AdrRng::seeded(1);
    let mut net = Network::new((8, 8, 2));
    let geom = ConvGeom::new(8, 8, 2, 3, 3, 1, 0).unwrap();
    net.push(Box::new(Conv2d::new("conv", geom, 4, &mut rng)));
    net.push(Box::new(Relu::new("relu")));
    net.push(Box::new(Pool2d::max("pool", 2, 2)));
    net.push(Box::new(Dense::new("fc", 3 * 3 * 4, 3, &mut rng)));
    let mut xrng = AdrRng::seeded(2);
    let x = Tensor4::from_fn(2, 8, 8, 2, |_, _, _, _| xrng.gauss() * 0.5);
    check_input_gradient(&mut net, &x, &[0, 2], 2e-2);
}

#[test]
fn two_conv_chain_with_padding_and_stride() {
    let mut rng = AdrRng::seeded(3);
    let mut net = Network::new((9, 9, 1));
    let g1 = ConvGeom::new(9, 9, 1, 3, 3, 2, 1).unwrap(); // 9 -> 5
    net.push(Box::new(Conv2d::new("conv1", g1, 3, &mut rng)));
    net.push(Box::new(Relu::new("relu1")));
    let g2 = ConvGeom::new(5, 5, 3, 3, 3, 1, 0).unwrap(); // 5 -> 3
    net.push(Box::new(Conv2d::new("conv2", g2, 4, &mut rng)));
    net.push(Box::new(Dense::new("fc", 3 * 3 * 4, 2, &mut rng)));
    let mut xrng = AdrRng::seeded(4);
    let x = Tensor4::from_fn(1, 9, 9, 1, |_, _, _, _| xrng.gauss() * 0.5);
    check_input_gradient(&mut net, &x, &[1], 2e-2);
}

// grad-check: Lrn
#[test]
fn chain_with_lrn_and_avg_pool() {
    let mut rng = AdrRng::seeded(5);
    let mut net = Network::new((6, 6, 3));
    let geom = ConvGeom::new(6, 6, 3, 3, 3, 1, 0).unwrap();
    net.push(Box::new(Conv2d::new("conv", geom, 4, &mut rng)));
    net.push(Box::new(Lrn::new("lrn", 1, 0.5, 0.75, 2.0)));
    net.push(Box::new(Pool2d::avg("pool", 2, 2)));
    net.push(Box::new(Dense::new("fc", 2 * 2 * 4, 3, &mut rng)));
    let mut xrng = AdrRng::seeded(6);
    let x = Tensor4::from_fn(1, 6, 6, 3, |_, _, _, _| xrng.gauss() * 0.4);
    check_input_gradient(&mut net, &x, &[2], 3e-2);
}

#[test]
fn weight_gradients_of_composed_network() {
    let mut rng = AdrRng::seeded(7);
    let mut net = Network::new((6, 6, 1));
    let geom = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).unwrap();
    net.push(Box::new(Conv2d::new("conv", geom, 3, &mut rng)));
    net.push(Box::new(Relu::new("relu")));
    net.push(Box::new(Dense::new("fc", 4 * 4 * 3, 2, &mut rng)));
    let mut xrng = AdrRng::seeded(8);
    let x = Tensor4::from_fn(2, 6, 6, 1, |_, _, _, _| xrng.gauss() * 0.5);
    let labels = [0usize, 1];

    let logits = net.forward(&x, Mode::Train);
    let out = softmax_cross_entropy(&logits, &labels);
    net.backward(&out.grad);
    let base = out.loss;

    // Collect analytic gradients, then perturb weights one at a time.
    let analytic: Vec<Vec<f32>> =
        net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).map(|p| p.grad.to_vec()).collect();
    let eps = 1e-2;
    for (pi, grads) in analytic.iter().enumerate() {
        let stride = (grads.len() / 5).max(1);
        for idx in (0..grads.len()).step_by(stride) {
            {
                let mut params: Vec<_> =
                    net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).collect();
                params[pi].data[idx] += eps;
            }
            let lp = loss_of(&mut net, &x, &labels);
            {
                let mut params: Vec<_> =
                    net.layers_mut().iter_mut().flat_map(|l| l.params_mut()).collect();
                params[pi].data[idx] -= eps;
            }
            let numeric = (lp - base) / eps;
            assert!(
                (numeric - grads[idx]).abs() < 3e-2,
                "param {pi} idx {idx}: numeric {numeric} vs analytic {}",
                grads[idx]
            );
        }
    }
}

#[test]
fn dropout_eval_gradient_is_exact() {
    // With dropout in eval mode the network is deterministic, so gradients
    // must check out exactly like any other chain.
    use adaptive_deep_reuse::nn::dropout::Dropout;
    let mut rng = AdrRng::seeded(9);
    let mut net = Network::new((4, 4, 2));
    net.push(Box::new(Dense::new("fc1", 32, 8, &mut rng)));
    net.push(Box::new(Relu::new("relu")));
    net.push(Box::new(Dropout::new("drop", 0.0, AdrRng::seeded(10))));
    net.push(Box::new(Dense::new("fc2", 8, 2, &mut rng)));
    let mut xrng = AdrRng::seeded(11);
    let x = Tensor4::from_fn(2, 4, 4, 2, |_, _, _, _| xrng.gauss() * 0.5);
    check_input_gradient(&mut net, &x, &[0, 1], 2e-2);
}

/// Loss of a network on a fixed batch using *training-mode* forwards (for
/// layers whose train path differs from eval: batch statistics, live masks).
fn train_loss_of(net: &mut Network, x: &Tensor4, labels: &[usize]) -> f32 {
    let logits = net.forward(x, Mode::Train);
    softmax_cross_entropy(&logits, labels).loss
}

// grad-check: BatchNorm
#[test]
fn chain_with_batchnorm_train_mode() {
    // BatchNorm's training forward normalises with *batch* statistics, so
    // the finite-difference probe must also run in training mode: the
    // statistics are a deterministic function of the input, and perturbing
    // one input cell legitimately moves the whole channel's mean/variance —
    // the analytic backward accounts for exactly that coupling.
    use adaptive_deep_reuse::nn::batchnorm::BatchNorm;
    let mut rng = AdrRng::seeded(12);
    let mut net = Network::new((6, 6, 2));
    let geom = ConvGeom::new(6, 6, 2, 3, 3, 1, 0).unwrap();
    net.push(Box::new(Conv2d::new("conv", geom, 4, &mut rng)));
    net.push(Box::new(BatchNorm::new("bn", 4)));
    net.push(Box::new(Relu::new("relu")));
    net.push(Box::new(Dense::new("fc", 4 * 4 * 4, 3, &mut rng)));
    let mut xrng = AdrRng::seeded(13);
    let x = Tensor4::from_fn(2, 6, 6, 2, |_, _, _, _| xrng.gauss() * 0.5);
    let labels = [0usize, 2];

    let logits = net.forward(&x, Mode::Train);
    let out = softmax_cross_entropy(&logits, &labels);
    let dx = net.backward(&out.grad);
    let base = out.loss;
    let eps = 1e-2;
    let stride = (x.len() / 7).max(1);
    for idx in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let lp = train_loss_of(&mut net, &xp, &labels);
        let numeric = (lp - base) / eps;
        let analytic = dx.as_slice()[idx];
        assert!(
            (numeric - analytic).abs() < 3e-2,
            "input idx {idx}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

// grad-check: Dropout
#[test]
fn dropout_train_gradient_replays_the_mask() {
    // Training-mode dropout draws a fresh mask per forward, so the probe
    // cannot reuse one network. Instead the whole network is rebuilt from
    // identical seeds for every loss evaluation: AdrRng is deterministic,
    // so each rebuild replays the same weights AND the same mask, making
    // the perturbed losses differentiable against the recorded backward.
    use adaptive_deep_reuse::nn::dropout::Dropout;
    let build = || {
        let mut rng = AdrRng::seeded(14);
        let mut net = Network::new((4, 4, 2));
        net.push(Box::new(Dense::new("fc1", 32, 12, &mut rng)));
        net.push(Box::new(Relu::new("relu")));
        net.push(Box::new(Dropout::new("drop", 0.3, AdrRng::seeded(15))));
        net.push(Box::new(Dense::new("fc2", 12, 3, &mut rng)));
        net
    };
    let mut xrng = AdrRng::seeded(16);
    let x = Tensor4::from_fn(2, 4, 4, 2, |_, _, _, _| xrng.gauss() * 0.5);
    let labels = [1usize, 2];

    let mut net = build();
    let logits = net.forward(&x, Mode::Train);
    let out = softmax_cross_entropy(&logits, &labels);
    let dx = net.backward(&out.grad);
    let base = out.loss;
    let eps = 1e-2;
    let stride = (x.len() / 9).max(1);
    for idx in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let lp = train_loss_of(&mut build(), &xp, &labels);
        let numeric = (lp - base) / eps;
        let analytic = dx.as_slice()[idx];
        assert!(
            (numeric - analytic).abs() < 2e-2,
            "input idx {idx}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

#[test]
fn lrn_standalone_gradient() {
    // LRN alone (radius spanning several channels) in front of a dense
    // head, complementing the avg-pool chain test above with a sharper
    // tolerance on the cross-channel terms.
    let mut rng = AdrRng::seeded(17);
    let mut net = Network::new((4, 4, 4));
    net.push(Box::new(Lrn::new("lrn", 2, 1e-2, 0.75, 1.0)));
    net.push(Box::new(Dense::new("fc", 4 * 4 * 4, 3, &mut rng)));
    let mut xrng = AdrRng::seeded(18);
    let x = Tensor4::from_fn(1, 4, 4, 4, |_, _, _, _| xrng.gauss() * 0.5 + 1.0);
    check_input_gradient(&mut net, &x, &[1], 1e-2);
}
