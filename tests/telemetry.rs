//! Integration tests for the unified telemetry layer (DESIGN.md §11):
//! the per-phase FLOP attribution identity, the serving report export, and
//! the determinism contract of recorded values.

// Test code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::rc::Rc;

use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::obs::{self, Recorder};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::serve::report::LATENCY_BUCKET_BOUNDS_MS;
use adaptive_deep_reuse::serve::EngineReport;

/// Trains a small reuse net for `steps` with a recorder installed and
/// returns the recorder plus the trained network.
fn instrumented_run(seed: u64, steps: usize, mode: ConvMode) -> (Recorder, Network) {
    let recorder = Recorder::new();
    let guard = obs::install(Rc::new(recorder.clone()));
    let mut rng = AdrRng::seeded(seed);
    let mut net = cifarnet::bench_scale(4, mode, &mut rng);
    let mut data_rng = rng.split(1);
    let batch = 4;
    let mut pixels = vec![0.0f32; batch * 16 * 16 * 3];
    data_rng.fill_gauss(&mut pixels);
    let images = Tensor4::from_vec(batch, 16, 16, 3, pixels).unwrap();
    let labels: Vec<usize> = (0..batch).map(|_| data_rng.below(4)).collect();
    let mut sgd = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0);
    for _ in 0..steps {
        obs::begin_step();
        net.train_batch(&images, &labels, &mut sgd);
    }
    drop(guard);
    (recorder, net)
}

/// The attribution identity the BENCH documents lean on: the per-phase
/// FLOP counters (hash + centroid-GEMM + scatter; im2col and clustering do
/// no multiply–adds) sum *exactly* to the layer's `FlopMeter` forward
/// total, for every reuse layer, across seeds and reuse configurations.
#[test]
fn phase_flop_attribution_sums_to_meter_totals() {
    let configs = [
        ConvMode::reuse_default(),
        ConvMode::Reuse(ReuseConfig::new(8, 6, false)),
        ConvMode::Reuse(ReuseConfig::new(12, 10, true)),
    ];
    for seed in [7u64, 42, 1234] {
        for mode in configs {
            let (recorder, mut net) = instrumented_run(seed, 2, mode);
            let mut reuse_layers = 0;
            for layer in net.layers_mut() {
                let name = layer.name().to_string();
                let forward = layer.flops().forward;
                let Some(_) = layer.as_any_mut().and_then(|a| a.downcast_mut::<ReuseConv2d>())
                else {
                    continue;
                };
                reuse_layers += 1;
                let phase_sum: u64 = ["hash", "centroid_gemm", "scatter"]
                    .iter()
                    .map(|phase| {
                        recorder
                            .counter(
                                "adr_reuse_phase_flops",
                                &[("layer", name.as_str()), ("phase", phase)],
                            )
                            .unwrap_or(0)
                    })
                    .sum();
                let reported = recorder
                    .counter("adr_reuse_flops_actual", &[("layer", name.as_str())])
                    .unwrap_or(0);
                assert_eq!(
                    phase_sum, forward,
                    "seed {seed}, layer {name}: phase FLOPs diverge from the meter"
                );
                assert_eq!(
                    reported, forward,
                    "seed {seed}, layer {name}: exported total diverges from the meter"
                );
                assert!(forward > 0, "seed {seed}, layer {name}: no forward work metered");
            }
            assert_eq!(reuse_layers, 2, "expected both conv layers on the reuse path");
        }
    }
}

/// Two identical seeded instrumented runs must export bitwise-identical
/// value telemetry. Wall times differ run to run, which is exactly why
/// `to_json_lines(false)` excludes them.
#[test]
fn exported_values_are_bitwise_identical_across_runs() {
    let (a, _) = instrumented_run(42, 3, ConvMode::reuse_default());
    let (b, _) = instrumented_run(42, 3, ConvMode::reuse_default());
    let lines_a = a.to_json_lines(false);
    let lines_b = b.to_json_lines(false);
    assert!(!lines_a.is_empty(), "instrumented run exported nothing");
    assert_eq!(lines_a, lines_b, "value telemetry diverged between identical runs");
    // The Prometheus rendering additionally carries wall-clock counters,
    // which are expected to differ; everything else must not.
    let strip_times = |text: String| -> String {
        text.lines().filter(|l| !l.contains(obs::PHASE_TIME_METRIC)).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip_times(a.to_prometheus()), strip_times(b.to_prometheus()));
}

/// `EngineReport::export_metrics` mirrors every counter, per-stage count,
/// and latency bucket into the installed sink under `adr_serve_*` names.
#[test]
fn serve_report_export_matches_the_report() {
    let report = EngineReport {
        admitted: 10,
        completed: 7,
        shed_overloaded: 2,
        deadline_missed: 1,
        batches: 3,
        degraded_steps: 2,
        requests_per_stage: vec![4, 3],
        flops_actual: 25,
        flops_exact: 100,
        ..EngineReport::default()
    };
    let recorder = Recorder::new();
    {
        let _guard = obs::install(Rc::new(recorder.clone()));
        report.export_metrics();
    }
    for (name, value) in report.counters() {
        let exported = recorder.counter(&format!("adr_serve_{name}"), &[]);
        assert_eq!(exported, Some(value), "counter {name} not mirrored");
    }
    assert_eq!(recorder.counter("adr_serve_requests", &[("stage", "0")]), Some(4));
    assert_eq!(recorder.counter("adr_serve_requests", &[("stage", "1")]), Some(3));
    let first_bound = LATENCY_BUCKET_BOUNDS_MS[0].to_string();
    assert_eq!(
        recorder.counter("adr_serve_latency_ms_bucket", &[("le", first_bound.as_str())]),
        Some(0),
        "empty buckets are still exported so scrapes have a stable shape"
    );
    assert_eq!(recorder.counter("adr_serve_latency_ms_bucket", &[("le", "+Inf")]), Some(0));
    let savings = recorder.gauge("adr_serve_flop_savings", &[]).unwrap();
    assert!((savings - 0.75).abs() < 1e-12);
}

/// Without an installed sink every instrumentation call is a silent no-op:
/// training and report export proceed normally and record nothing.
#[test]
fn telemetry_is_a_noop_without_a_sink() {
    assert!(!obs::is_active());
    let mut rng = AdrRng::seeded(7);
    let mut net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let mut data_rng = rng.split(1);
    let mut pixels = vec![0.0f32; 2 * 16 * 16 * 3];
    data_rng.fill_gauss(&mut pixels);
    let images = Tensor4::from_vec(2, 16, 16, 3, pixels).unwrap();
    let mut sgd = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0);
    obs::begin_step();
    let step = net.train_batch(&images, &[0, 1], &mut sgd);
    assert!(step.loss.is_finite());
    EngineReport::default().export_metrics();

    // A recorder created but never installed stays empty.
    let recorder = Recorder::new();
    assert!(recorder.counters().is_empty());
    assert!(recorder.to_json_lines(true).is_empty());
}
