//! End-to-end tests for the `checked` runtime invariant layer.
//!
//! Compiled only with `cargo test --features checked`; in default builds
//! this file is empty and the sanitizer calls in the layers are no-ops.
#![cfg(feature = "checked")]
// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adr_clustering::lsh::LshTable;
use adr_nn::conv::Conv2d;
use adr_nn::dense::Dense;
use adr_nn::layer::{Layer, Mode};
use adr_reuse::forward::reuse_forward;
use adr_reuse::subvec::SubVecSplit;
use adr_tensor::im2col::ConvGeom;
use adr_tensor::matrix::Matrix;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = std::panic::catch_unwind(f).expect_err("expected a sanitizer panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn conv_sanitizer_names_the_layer_on_nan_input() {
    let geom = ConvGeom::new(4, 4, 1, 3, 3, 1, 0).expect("valid geometry");
    let mut conv = Conv2d::new("conv_bad", geom, 2, &mut AdrRng::seeded(1));
    let mut x = Tensor4::zeros(1, 4, 4, 1);
    x.as_mut_slice()[5] = f32::NAN;
    let msg = panic_message(move || {
        conv.forward(&x, Mode::Eval);
    });
    assert!(
        msg.contains("conv conv_bad: forward input"),
        "sanitizer should name the layer and pass: {msg}"
    );
    assert!(msg.contains("flat index 5"), "sanitizer should locate the value: {msg}");
}

#[test]
fn dense_sanitizer_catches_inf_gradients() {
    let mut dense = Dense::new("fc_bad", 4, 3, &mut AdrRng::seeded(2));
    let x = Tensor4::from_vec(2, 1, 1, 4, vec![0.5; 8]).expect("shape matches");
    dense.forward(&x, Mode::Train);
    let mut grad = Tensor4::zeros(2, 1, 1, 3);
    grad.as_mut_slice()[0] = f32::INFINITY;
    let msg = panic_message(move || {
        dense.backward(&grad);
    });
    assert!(
        msg.contains("dense fc_bad: backward grad_out"),
        "sanitizer should name the layer and pass: {msg}"
    );
}

#[test]
fn reuse_sanitizer_reports_cluster_row_for_bad_centroid() {
    let mut rng = AdrRng::seeded(3);
    let mut x = Matrix::from_fn(8, 6, |_, _| rng.gauss());
    x.as_mut_slice()[13] = f32::NAN; // row 2 of the unfolded input
    let w = Matrix::from_fn(6, 4, |_, _| rng.gauss());
    let split = SubVecSplit::new(6, 6);
    let lsh = vec![LshTable::new(6, 8, &mut rng)];
    let msg = panic_message(move || {
        reuse_forward(&x, &w, &[0.0; 4], &split, &lsh, None, None);
    });
    // The input check fires first and identifies the pass.
    assert!(msg.contains("reuse forward"), "sanitizer should name the pass: {msg}");
}

#[test]
fn clean_training_step_passes_all_checks() {
    let geom = ConvGeom::new(6, 6, 1, 3, 3, 1, 0).expect("valid geometry");
    let mut conv = Conv2d::new("conv_ok", geom, 2, &mut AdrRng::seeded(4));
    let x = Tensor4::from_fn(2, 6, 6, 1, |_, y, xx, _| ((y + xx) % 3) as f32 * 0.1);
    let y = conv.forward(&x, Mode::Train);
    let grad = Tensor4::from_vec(2, 4, 4, 2, vec![0.01; 2 * 4 * 4 * 2]).expect("shape matches");
    let dx = conv.backward(&grad);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
    assert!(dx.as_slice().iter().all(|v| v.is_finite()));
}
