//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use adaptive_deep_reuse::clustering::lsh::{cluster_from_signatures, LshTable};
use adaptive_deep_reuse::clustering::normalize::angular_distance;
use adaptive_deep_reuse::reuse::cost::{delta_e_h, delta_e_l, forward_cost, CostParams};
use adaptive_deep_reuse::reuse::subvec::SubVecSplit;
use adaptive_deep_reuse::tensor::im2col::{col2im, im2col, ConvGeom};
use adaptive_deep_reuse::tensor::rng::AdrRng;
use adaptive_deep_reuse::tensor::{Matrix, Tensor4};
use proptest::prelude::*;

/// Strategy producing a small matrix with bounded values.
fn small_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- GEMM algebra ----------------

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(6, 5), seed in 0u64..1000) {
        let mut rng = AdrRng::seeded(seed);
        let k = a.cols();
        let b = Matrix::from_fn(k, 4, |_, _| rng.gauss());
        let c = Matrix::from_fn(k, 4, |_, _| rng.gauss());
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn transposed_products_are_consistent(a in small_matrix(6, 5), seed in 0u64..1000) {
        let mut rng = AdrRng::seeded(seed);
        let b = Matrix::from_fn(a.rows(), 3, |_, _| rng.gauss());
        // (aᵀ·b)ᵀ == bᵀ·a
        let lhs = a.matmul_t_a(&b).transpose();
        let rhs = b.matmul_t_a(&a);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    // ---------------- im2col / col2im ----------------

    #[test]
    fn im2col_col2im_adjoint(
        h in 3usize..7, w in 3usize..7, c in 1usize..3,
        kh in 1usize..4, kw in 1usize..4,
        stride in 1usize..3, padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(ConvGeom::new(h, w, c, kh, kw, stride, padding).is_some());
        let geom = ConvGeom::new(h, w, c, kh, kw, stride, padding).unwrap();
        let mut rng = AdrRng::seeded(seed);
        let x = Tensor4::from_fn(2, h, w, c, |_, _, _, _| rng.gauss());
        let unf = im2col(&x, &geom);
        let y = Matrix::from_fn(unf.rows(), unf.cols(), |_, _| rng.gauss());
        // <im2col(x), y> == <x, col2im(y)>
        let lhs: f64 = unf.as_slice().iter().zip(y.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let folded = col2im(&y, &geom, 2);
        let rhs: f64 = x.as_slice().iter().zip(folded.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn unfolded_row_count_matches_formula(
        h in 3usize..9, w in 3usize..9, c in 1usize..3, kw in 1usize..4,
    ) {
        prop_assume!(h >= kw && w >= kw);
        let geom = ConvGeom::new(h, w, c, kw, kw, 1, 0).unwrap();
        // Paper: N = Nb·(Iw − kw + 1)·(Ih − kh + 1) for stride 1.
        let x = Tensor4::zeros(3, h, w, c);
        let unf = im2col(&x, &geom);
        prop_assert_eq!(unf.rows(), 3 * (w - kw + 1) * (h - kw + 1));
        prop_assert_eq!(unf.cols(), c * kw * kw);
    }

    // ---------------- LSH ----------------

    #[test]
    fn lsh_signature_is_scale_invariant(
        dim in 2usize..16, hcount in 1usize..32, scale in 0.01f32..100.0, seed in 0u64..1000,
    ) {
        let mut rng = AdrRng::seeded(seed);
        let table = LshTable::new(dim, hcount, &mut rng);
        let v: Vec<f32> = (0..dim).map(|_| rng.gauss()).collect();
        let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
        prop_assert_eq!(table.signature(&v), table.signature(&scaled));
    }

    #[test]
    fn lsh_collision_probability_tracks_angle(seed in 0u64..200) {
        // For sign LSH, P(bit differs) = angle/pi. Verify the empirical bit
        // difference of a close pair is below that of an orthogonal pair.
        let mut rng = AdrRng::seeded(seed);
        let table = LshTable::new(8, 64, &mut rng);
        let base: Vec<f32> = (0..8).map(|_| rng.gauss()).collect();
        let near: Vec<f32> = base.iter().map(|x| x * 1.05 + 0.01).collect();
        prop_assume!(angular_distance(&base, &near) < 0.3);
        let far: Vec<f32> = base.iter().rev().map(|x| -x).collect();
        let near_bits = (table.signature(&base) ^ table.signature(&near)).count_ones();
        let far_bits = (table.signature(&base) ^ table.signature(&far)).count_ones();
        prop_assert!(near_bits <= far_bits, "near {near_bits} far {far_bits}");
    }

    // ---------------- Cluster tables ----------------

    #[test]
    fn cluster_table_partitions_rows(labels in proptest::collection::vec(0u64..20, 1..100)) {
        let (table, sigs) = cluster_from_signatures(labels.iter().copied());
        table.validate().unwrap();
        prop_assert_eq!(table.num_rows(), labels.len());
        prop_assert_eq!(table.num_clusters(), sigs.len());
        // Counts sum to N.
        let total: u32 = table.counts().iter().sum();
        prop_assert_eq!(total as usize, labels.len());
        // Equal labels share clusters; distinct labels do not.
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                prop_assert_eq!(
                    labels[i] == labels[j],
                    table.cluster_of(i) == table.cluster_of(j)
                );
            }
        }
    }

    #[test]
    fn centroid_scatter_preserves_row_sums(
        labels in proptest::collection::vec(0u64..5, 2..30),
        seed in 0u64..1000,
    ) {
        let (table, _) = cluster_from_signatures(labels.iter().copied());
        let mut rng = AdrRng::seeded(seed);
        let data = Matrix::from_fn(labels.len(), 4, |_, _| rng.gauss());
        // Total mass per cluster is invariant under gather_mean + scatter.
        let mean = table.gather_mean(&data);
        let mut back = Matrix::zeros(labels.len(), 4);
        table.scatter_add(&mean, &mut back);
        let orig = table.gather_sum(&data);
        let reconstructed = table.gather_sum(&back);
        prop_assert!(orig.max_abs_diff(&reconstructed) < 1e-3);
    }

    // ---------------- Sub-vector splits ----------------

    #[test]
    fn subvec_split_partitions_k(k in 1usize..2000, l in 1usize..2000) {
        let split = SubVecSplit::new(k, l);
        let mut pos = 0usize;
        for &(a, b) in split.ranges() {
            prop_assert_eq!(a, pos);
            prop_assert!(b > a);
            prop_assert!(b - a <= split.l());
            pos = b;
        }
        prop_assert_eq!(pos, k);
        prop_assert_eq!(split.num_sub_vectors(), k.div_ceil(split.l()));
    }

    // ---------------- Cost model ----------------

    #[test]
    fn forward_cost_is_monotone_in_each_knob(
        m in 8usize..512, l in 1usize..256, hcount in 1usize..64, rc in 0.0f64..1.0,
    ) {
        let p = CostParams { m, l, h: hcount, rc, reuse_rate: 0.0 };
        let base = forward_cost(&p);
        // More hashes cost more.
        let more_h = CostParams { h: hcount + 1, ..p };
        prop_assert!(forward_cost(&more_h) > base);
        // Higher remaining ratio costs more.
        let more_rc = CostParams { rc: (rc + 0.1).min(1.0), ..p };
        prop_assert!(forward_cost(&more_rc) >= base);
        // Longer sub-vectors cost less in adds.
        let more_l = CostParams { l: l + 1, ..p };
        prop_assert!(forward_cost(&more_l) < base);
    }

    #[test]
    fn delta_formulas_match_cost_differences(
        m in 8usize..512, l1 in 1usize..256, l2 in 1usize..256, h1 in 1usize..64, h2 in 1usize..64,
    ) {
        let p1 = CostParams { m, l: l1, h: h1, rc: 0.3, reuse_rate: 0.0 };
        let p_l = CostParams { l: l2, ..p1 };
        let p_h = CostParams { h: h2, ..p1 };
        prop_assert!((delta_e_l(l1, l2) - (forward_cost(&p_l) - forward_cost(&p1))).abs() < 1e-9);
        prop_assert!((delta_e_h(h1, h2, m) - (forward_cost(&p_h) - forward_cost(&p1))).abs() < 1e-9);
    }
}
