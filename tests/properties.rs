//! Property-style tests on the core data structures and invariants of the
//! workspace.
//!
//! The workspace builds offline, so instead of `proptest` these run each
//! property over a deterministic sweep of seeded random cases drawn from
//! [`AdrRng`]; failures print the case seed, which fully reproduces the
//! input.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::clustering::lsh::{cluster_from_signatures, LshTable};
use adaptive_deep_reuse::clustering::normalize::angular_distance;
use adaptive_deep_reuse::reuse::cost::{delta_e_h, delta_e_l, forward_cost, CostParams};
use adaptive_deep_reuse::reuse::subvec::SubVecSplit;
use adaptive_deep_reuse::tensor::im2col::{col2im, im2col, ConvGeom};
use adaptive_deep_reuse::tensor::rng::AdrRng;
use adaptive_deep_reuse::tensor::{Matrix, Tensor4};

/// Runs `body` over `cases` independent seeded RNG streams.
fn for_cases(cases: u64, mut body: impl FnMut(u64, &mut AdrRng)) {
    for case in 0..cases {
        let mut rng = AdrRng::seeded(0xAD40 + case);
        body(case, &mut rng);
    }
}

/// A random matrix with dims in `[1, max_rows] × [1, max_cols]` and bounded
/// values.
fn small_matrix(rng: &mut AdrRng, max_rows: usize, max_cols: usize) -> Matrix {
    let r = 1 + rng.below(max_rows);
    let c = 1 + rng.below(max_cols);
    Matrix::from_fn(r, c, |_, _| rng.uniform_in(-10.0, 10.0))
}

// ---------------- GEMM algebra ----------------

#[test]
fn matmul_distributes_over_addition() {
    for_cases(64, |case, rng| {
        let a = small_matrix(rng, 6, 5);
        let k = a.cols();
        let b = Matrix::from_fn(k, 4, |_, _| rng.gauss());
        let c = Matrix::from_fn(k, 4, |_, _| rng.gauss());
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        assert!(lhs.max_abs_diff(&rhs) < 1e-2, "case {case}");
    });
}

#[test]
fn transposed_products_are_consistent() {
    for_cases(64, |case, rng| {
        let a = small_matrix(rng, 6, 5);
        let b = Matrix::from_fn(a.rows(), 3, |_, _| rng.gauss());
        // (aᵀ·b)ᵀ == bᵀ·a
        let lhs = a.matmul_t_a(&b).transpose();
        let rhs = b.matmul_t_a(&a);
        assert!(lhs.max_abs_diff(&rhs) < 1e-3, "case {case}");
    });
}

// ---------------- im2col / col2im ----------------

#[test]
fn im2col_col2im_adjoint() {
    for_cases(64, |case, rng| {
        let h = 3 + rng.below(4);
        let w = 3 + rng.below(4);
        let c = 1 + rng.below(2);
        let kh = 1 + rng.below(3);
        let kw = 1 + rng.below(3);
        let stride = 1 + rng.below(2);
        let padding = rng.below(2);
        let Some(geom) = ConvGeom::new(h, w, c, kh, kw, stride, padding) else {
            return;
        };
        let x = Tensor4::from_fn(2, h, w, c, |_, _, _, _| rng.gauss());
        let unf = im2col(&x, &geom);
        let y = Matrix::from_fn(unf.rows(), unf.cols(), |_, _| rng.gauss());
        // <im2col(x), y> == <x, col2im(y)>
        let lhs: f64 =
            unf.as_slice().iter().zip(y.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let folded = col2im(&y, &geom, 2);
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(folded.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "case {case}: lhs {lhs} rhs {rhs}");
    });
}

#[test]
fn im2col_col2im_round_trip_reconstructs_input() {
    // col2im(im2col(x)) multiplies each pixel by the number of patches it
    // appears in. Dividing by that multiplicity (col2im of the unfolded
    // all-ones matrix) must reconstruct x exactly; for non-overlapping
    // geometries the multiplicity is 1 and the round trip is the identity.
    for_cases(48, |case, rng| {
        let h = 3 + rng.below(5);
        let w = 3 + rng.below(5);
        let c = 1 + rng.below(2);
        let kh = 1 + rng.below(3);
        let kw = 1 + rng.below(3);
        let stride = 1 + rng.below(2);
        let Some(geom) = ConvGeom::new(h, w, c, kh, kw, stride, 0) else {
            return;
        };
        let x = Tensor4::from_fn(2, h, w, c, |_, _, _, _| rng.gauss());
        let unf = im2col(&x, &geom);
        let folded = col2im(&unf, &geom, 2);
        let ones = Matrix::filled(unf.rows(), unf.cols(), 1.0);
        let multiplicity = col2im(&ones, &geom, 2);
        for (i, ((&orig, &got), &count)) in
            x.as_slice().iter().zip(folded.as_slice()).zip(multiplicity.as_slice()).enumerate()
        {
            if count == 0.0 {
                // Pixels no patch covers (stride gaps) fold back to zero.
                assert_eq!(got, 0.0, "case {case}: uncovered pixel {i} not zero");
            } else {
                assert!(
                    (got / count - orig).abs() < 1e-5 * orig.abs().max(1.0),
                    "case {case}: pixel {i}: {got} / {count} != {orig}"
                );
            }
        }
    });
}

#[test]
fn unfolded_row_count_matches_formula() {
    for_cases(64, |_case, rng| {
        let h = 3 + rng.below(6);
        let w = 3 + rng.below(6);
        let c = 1 + rng.below(2);
        let kw = 1 + rng.below(3);
        if h < kw || w < kw {
            return;
        }
        let geom = ConvGeom::new(h, w, c, kw, kw, 1, 0).expect("kernel fits");
        // Paper: N = Nb·(Iw − kw + 1)·(Ih − kh + 1) for stride 1.
        let x = Tensor4::zeros(3, h, w, c);
        let unf = im2col(&x, &geom);
        assert_eq!(unf.rows(), 3 * (w - kw + 1) * (h - kw + 1));
        assert_eq!(unf.cols(), c * kw * kw);
    });
}

// ---------------- LSH ----------------

#[test]
fn lsh_signature_is_scale_invariant() {
    for_cases(64, |case, rng| {
        let dim = 2 + rng.below(14);
        let hcount = 1 + rng.below(31);
        let scale = rng.uniform_in(0.01, 100.0);
        let table = LshTable::new(dim, hcount, rng);
        let v: Vec<f32> = (0..dim).map(|_| rng.gauss()).collect();
        let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
        assert_eq!(table.signature(&v), table.signature(&scaled), "case {case}");
    });
}

#[test]
fn lsh_collision_probability_tracks_angle() {
    for_cases(100, |case, rng| {
        // For sign LSH, P(bit differs) = angle/pi. Verify the empirical bit
        // difference of a close pair is below that of an orthogonal pair.
        let table = LshTable::new(8, 64, rng);
        let base: Vec<f32> = (0..8).map(|_| rng.gauss()).collect();
        let near: Vec<f32> = base.iter().map(|x| x * 1.05 + 0.01).collect();
        if angular_distance(&base, &near) >= 0.3 {
            return;
        }
        let far: Vec<f32> = base.iter().rev().map(|x| -x).collect();
        let near_bits = (table.signature(&base) ^ table.signature(&near)).count_ones();
        let far_bits = (table.signature(&base) ^ table.signature(&far)).count_ones();
        assert!(near_bits <= far_bits, "case {case}: near {near_bits} far {far_bits}");
    });
}

// ---------------- Cluster tables ----------------

#[test]
fn cluster_table_partitions_rows() {
    for_cases(64, |case, rng| {
        let len = 1 + rng.below(99);
        let labels: Vec<u64> = (0..len).map(|_| rng.next_u64() % 20).collect();
        let (table, sigs) = cluster_from_signatures(labels.iter().copied());
        table.validate().expect("table must be internally consistent");
        assert_eq!(table.num_rows(), labels.len());
        assert_eq!(table.num_clusters(), sigs.len());
        // Counts sum to N.
        let total: u32 = table.counts().iter().sum();
        assert_eq!(total as usize, labels.len());
        // Equal labels share clusters; distinct labels do not.
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                assert_eq!(
                    labels[i] == labels[j],
                    table.cluster_of(i) == table.cluster_of(j),
                    "case {case}: rows {i},{j}"
                );
            }
        }
    });
}

#[test]
fn centroid_scatter_preserves_row_sums() {
    for_cases(64, |case, rng| {
        let len = 2 + rng.below(28);
        let labels: Vec<u64> = (0..len).map(|_| rng.next_u64() % 5).collect();
        let (table, _) = cluster_from_signatures(labels.iter().copied());
        let data = Matrix::from_fn(labels.len(), 4, |_, _| rng.gauss());
        // Total mass per cluster is invariant under gather_mean + scatter.
        let mean = table.gather_mean(&data);
        let mut back = Matrix::zeros(labels.len(), 4);
        table.scatter_add(&mean, &mut back);
        let orig = table.gather_sum(&data);
        let reconstructed = table.gather_sum(&back);
        assert!(orig.max_abs_diff(&reconstructed) < 1e-3, "case {case}");
    });
}

// ---------------- Sub-vector splits ----------------

#[test]
fn subvec_split_partitions_k() {
    for_cases(200, |case, rng| {
        let k = 1 + rng.below(1999);
        let l = 1 + rng.below(1999);
        let split = SubVecSplit::new(k, l);
        let mut pos = 0usize;
        for &(a, b) in split.ranges() {
            assert_eq!(a, pos, "case {case}");
            assert!(b > a, "case {case}");
            assert!(b - a <= split.l(), "case {case}");
            pos = b;
        }
        assert_eq!(pos, k, "case {case}");
        assert_eq!(split.num_sub_vectors(), k.div_ceil(split.l()), "case {case}");
    });
}

// ---------------- Cost model ----------------

#[test]
fn forward_cost_is_monotone_in_each_knob() {
    for_cases(128, |case, rng| {
        let m = 8 + rng.below(504);
        let l = 1 + rng.below(255);
        let hcount = 1 + rng.below(63);
        let rc = rng.uniform() as f64;
        let p = CostParams { m, l, h: hcount, rc, reuse_rate: 0.0 };
        let base = forward_cost(&p);
        // More hashes cost more.
        let more_h = CostParams { h: hcount + 1, ..p };
        assert!(forward_cost(&more_h) > base, "case {case}");
        // Higher remaining ratio costs more.
        let more_rc = CostParams { rc: (rc + 0.1).min(1.0), ..p };
        assert!(forward_cost(&more_rc) >= base, "case {case}");
        // Longer sub-vectors cost less in adds.
        let more_l = CostParams { l: l + 1, ..p };
        assert!(forward_cost(&more_l) < base, "case {case}");
    });
}

#[test]
fn delta_formulas_match_cost_differences() {
    for_cases(128, |case, rng| {
        let m = 8 + rng.below(504);
        let l1 = 1 + rng.below(255);
        let l2 = 1 + rng.below(255);
        let h1 = 1 + rng.below(63);
        let h2 = 1 + rng.below(63);
        let p1 = CostParams { m, l: l1, h: h1, rc: 0.3, reuse_rate: 0.0 };
        let p_l = CostParams { l: l2, ..p1 };
        let p_h = CostParams { h: h2, ..p1 };
        assert!(
            (delta_e_l(l1, l2) - (forward_cost(&p_l) - forward_cost(&p1))).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (delta_e_h(h1, h2, m) - (forward_cost(&p_h) - forward_cost(&p1))).abs() < 1e-9,
            "case {case}"
        );
    });
}
