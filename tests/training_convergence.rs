//! End-to-end training convergence: dense and reuse networks must both
//! learn separable synthetic tasks, and the FLOP accounting must hold up
//! over whole runs.

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::BatchSource;
use adaptive_deep_reuse::models::{alexnet, cifarnet, ConvMode};
use adaptive_deep_reuse::nn::{LrSchedule, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;
use adaptive_deep_reuse::source::DatasetSource;

fn dataset(seed: u64, hw: usize, n: usize) -> SynthDataset {
    let cfg = SynthConfig {
        num_images: n,
        num_classes: 4,
        height: hw,
        width: hw,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 2,
        image_variability: 0.4,
    };
    SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed))
}

fn train(net: &mut Network, source: &mut DatasetSource, iterations: usize, lr: f32) -> (f32, f32) {
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: lr, rate: 0.002 }, 0.9, 0.0).with_clip_norm(5.0);
    let mut last_loss = f32::INFINITY;
    for it in 0..iterations {
        let (x, y) = source.batch(it % source.num_batches());
        last_loss = net.train_batch(&x, &y, &mut sgd).loss;
    }
    let (px, py) = source.probe();
    (net.evaluate(&px, &py).accuracy, last_loss)
}

#[test]
fn dense_cifarnet_learns_synthetic_classes() {
    let mut rng = AdrRng::seeded(1);
    let mut net = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    let mut source = DatasetSource::new(dataset(2, 16, 160), 16, 32);
    let (acc, loss) = train(&mut net, &mut source, 150, 0.02);
    assert!(acc > 0.6, "dense accuracy {acc}");
    assert!(loss < 1.0, "dense loss {loss}");
}

#[test]
fn reuse_cifarnet_learns_with_precise_settings() {
    let mut rng = AdrRng::seeded(3);
    let mut net =
        cifarnet::bench_scale(4, ConvMode::Reuse(ReuseConfig::new(5, 13, false)), &mut rng);
    let mut source = DatasetSource::new(dataset(4, 16, 160), 16, 32);
    let (acc, _) = train(&mut net, &mut source, 300, 0.02);
    assert!(acc > 0.55, "reuse accuracy {acc}");
    // And it must have cost less than the dense equivalent.
    let flops = net.flops();
    let baseline = net.baseline_flops();
    assert!(flops.total() < baseline.total());
}

#[test]
fn reuse_training_flops_scale_with_aggressiveness() {
    // Same run length, two configs: the more aggressive one must do less work.
    let run = |l: usize, h: usize| {
        let mut rng = AdrRng::seeded(5);
        let mut net =
            cifarnet::bench_scale(4, ConvMode::Reuse(ReuseConfig::new(l, h, false)), &mut rng);
        let mut source = DatasetSource::new(dataset(6, 16, 96), 16, 16);
        train(&mut net, &mut source, 30, 0.02);
        net.flops().total()
    };
    let aggressive = run(40, 6);
    let precise = run(5, 13);
    assert!(
        aggressive < precise,
        "aggressive {aggressive} should cost less than precise {precise}"
    );
}

#[test]
fn alexnet_bench_scale_trains_one_epoch_without_errors() {
    let mut rng = AdrRng::seeded(7);
    let mut net = alexnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    let mut source = DatasetSource::new(dataset(8, 64, 48), 8, 8);
    let (acc, loss) = train(&mut net, &mut source, 5, 0.01);
    assert!(loss.is_finite());
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn deterministic_training_given_seeds() {
    let run = || {
        let mut rng = AdrRng::seeded(11);
        let mut net =
            cifarnet::bench_scale(4, ConvMode::Reuse(ReuseConfig::new(10, 8, false)), &mut rng);
        let mut source = DatasetSource::new(dataset(12, 16, 64), 16, 16);
        let mut sgd = Sgd::constant(0.02);
        let mut losses = Vec::new();
        for it in 0..10 {
            let (x, y) = source.batch(it % source.num_batches());
            losses.push(net.train_batch(&x, &y, &mut sgd).loss);
        }
        losses
    };
    assert_eq!(run(), run(), "same seeds must give bit-identical training");
}
