//! Quickstart: train a small CNN with adaptive deep reuse and compare it
//! against the dense baseline.
//!
//! Run with: `cargo run --release --example quickstart`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::{Trainer, TrainerConfig};
use adaptive_deep_reuse::adaptive::Strategy;
use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::nn::{LrSchedule, Sgd};
use adaptive_deep_reuse::prelude::*;

fn main() {
    println!("adaptive deep reuse — quickstart\n");

    // 1. A deterministic synthetic dataset standing in for CIFAR-10
    //    (16x16x3, 4 classes; see DESIGN.md for the substitution rationale).
    let mut rng = AdrRng::seeded(42);
    let cfg = SynthConfig {
        num_images: 240,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 3,
        noise_std: 0.05,
        max_shift: 2,
        image_variability: 0.45,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    println!(
        "dataset: {} images of {:?}, {} classes",
        dataset.len(),
        dataset.image_shape(),
        dataset.num_classes()
    );

    let trainer = Trainer::new(TrainerConfig {
        max_iterations: 250,
        target_accuracy: None,
        eval_every: 25,
        ..Default::default()
    });

    // 2. Dense baseline.
    let mut baseline_rng = AdrRng::seeded(7);
    let mut baseline_net = cifarnet::bench_scale(4, ConvMode::Dense, &mut baseline_rng);
    let mut source = DatasetSource::new(dataset.clone(), 16, 32);
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    let baseline =
        trainer.train(&mut baseline_net, Strategy::baseline(), &mut source, &mut sgd).unwrap();
    println!("\n== dense baseline ==\n{}", baseline.summary());

    // 3. The same topology with adaptive deep reuse (Strategy 2): the
    //    controller starts each conv at its most aggressive {L, H} and
    //    tightens the parameters whenever the loss plateaus.
    let mut reuse_rng = AdrRng::seeded(7);
    let mut reuse_net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut reuse_rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    let adaptive =
        trainer.train(&mut reuse_net, Strategy::adaptive(), &mut source, &mut sgd).unwrap();
    println!("\n== adaptive deep reuse (strategy 2) ==\n{}", adaptive.summary());

    println!(
        "\nadaptive run avoided {:.1}% of the dense multiply-adds \
         (baseline accuracy {:.3}, adaptive accuracy {:.3})",
        adaptive.flop_savings() * 100.0,
        baseline.final_accuracy,
        adaptive.final_accuracy
    );
    println!(
        "wall-time saving vs baseline: {:.1}%",
        adaptive.time_savings_vs(baseline.wall_time) * 100.0
    );
}
