//! Compare the paper's three training strategies against the dense baseline
//! on one network — a miniature of Table IV.
//!
//! Run with: `cargo run --release --example strategy_comparison`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::{Trainer, TrainerConfig};
use adaptive_deep_reuse::adaptive::Strategy;
use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::nn::{LrSchedule, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;

fn main() {
    println!("strategy comparison (miniature Table IV)\n");

    let trainer = Trainer::new(TrainerConfig {
        max_iterations: 300,
        target_accuracy: Some(0.85),
        eval_every: 10,
        plateau_patience: 8,
        plateau_min_delta: 0.01,
        ..Default::default()
    });

    let runs: Vec<(&str, ConvMode, Strategy)> = vec![
        ("baseline (dense)", ConvMode::Dense, Strategy::baseline()),
        (
            "strategy 1: fixed {L=10, H=10}",
            ConvMode::Reuse(ReuseConfig::new(10, 10, false)),
            Strategy::fixed(10, 10),
        ),
        ("strategy 2: adaptive {L, H}", ConvMode::reuse_default(), Strategy::adaptive()),
        (
            "strategy 3: cluster reuse on->off",
            ConvMode::Reuse(ReuseConfig::new(10, 10, true)),
            Strategy::cluster_reuse(10, 10),
        ),
    ];

    let mut baseline_time = None;
    println!(
        "{:<34} {:>6} {:>10} {:>9} {:>13} {:>12}",
        "strategy", "iters", "final acc", "time (s)", "flop savings", "time savings"
    );
    for (label, mode, strategy) in runs {
        // Same seeds for every run: identical data and initial weights.
        let mut rng = AdrRng::seeded(77);
        let cfg = SynthConfig {
            num_images: 240,
            num_classes: 4,
            height: 16,
            width: 16,
            channels: 3,
            smoothing_passes: 3,
            noise_std: 0.05,
            max_shift: 2,
            image_variability: 0.45,
        };
        let dataset = SynthDataset::generate(&cfg, &mut rng);
        let mut source = DatasetSource::new(dataset, 16, 32);
        let mut net = cifarnet::bench_scale(4, mode, &mut rng);
        let mut sgd = Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0)
            .with_clip_norm(5.0);
        let report = trainer.train(&mut net, strategy, &mut source, &mut sgd).unwrap();
        let time_s = report.wall_time.as_secs_f64();
        let time_saving = baseline_time.map_or(0.0, |t: f64| 1.0 - time_s / t);
        if baseline_time.is_none() {
            baseline_time = Some(time_s);
        }
        println!(
            "{:<34} {:>6} {:>10.3} {:>9.2} {:>12.1}% {:>11.1}%",
            label,
            report.iterations_run,
            report.final_accuracy,
            time_s,
            report.flop_savings() * 100.0,
            time_saving * 100.0
        );
        for sw in &report.switches {
            println!("    switch @ iter {}: {}", sw.iteration, sw.description);
        }
    }
    println!("\nExpected shape (paper Table IV): every reuse strategy saves work over the");
    println!("baseline; the adaptive strategy 2 saves the most, strategy 3 lands between");
    println!("strategies 1 and 2.");
}
