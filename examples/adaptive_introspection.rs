//! Inspect what the adaptive controller plans before training: per-layer
//! `{L, H}` ranges (Policies 1/2), the Policy-3 candidate schedule, and the
//! modelled cost of each stage — the paper's §V-A machinery made visible.
//!
//! Run with: `cargo run --release --example adaptive_introspection`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::controller::AdaptiveController;
use adaptive_deep_reuse::models::{alexnet, cifarnet, vgg19, ConvMode};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::cost::{training_step_cost, CostParams};
use adaptive_deep_reuse::reuse::ReuseConv2d;

fn inspect(name: &str, mut net: Network, batch_size: usize) {
    println!("=== {name} (batch {batch_size}) ===");
    let controller =
        AdaptiveController::for_network(&mut net, batch_size, 6, 8, 0.01, 20, false).unwrap();
    for plan in controller.plans() {
        // Pull the layer's geometry for context.
        let layer = &net.layers()[plan.layer_index];
        let reuse = layer
            .as_any()
            .and_then(|a| a.downcast_ref::<ReuseConv2d>())
            .expect("plan points at a reuse layer");
        let geom = reuse.geom();
        let settings = plan.candidates.settings();
        println!(
            "  {} (K = {}, M = {}): {} stages, {:?} -> {:?}",
            layer.name(),
            geom.k(),
            reuse.out_channels(),
            settings.len(),
            settings.first().unwrap(),
            settings.last().unwrap(),
        );
        // Modelled relative step cost per stage, assuming a representative
        // remaining ratio (r_c = 0.1) — the ordering is what matters.
        let costs: Vec<String> = settings
            .iter()
            .map(|&(l, h)| {
                let p = CostParams { m: reuse.out_channels(), l, h, rc: 0.1, reuse_rate: 0.0 };
                format!("{:.2}", training_step_cost(&p, false))
            })
            .collect();
        println!("    schedule: {settings:?}");
        println!("    modelled step cost (rc = 0.1): [{}]", costs.join(", "));
    }
    println!();
}

fn main() {
    println!("adaptive controller introspection\n");
    let mut rng = AdrRng::seeded(1);
    inspect("cifarnet", cifarnet::bench_scale(10, ConvMode::reuse_default(), &mut rng), 16);
    inspect("alexnet", alexnet::bench_scale(10, ConvMode::reuse_default(), &mut rng), 8);
    inspect("vgg19", vgg19::bench_scale(10, ConvMode::reuse_default(), &mut rng), 8);
    println!("Reading: each layer starts at its most aggressive (cheapest) stage and");
    println!("walks towards precision; Policy 3 ordered the walk so every step is the");
    println!("smallest available increase in expected cost (Eqs. 22/23).");
}
