//! Serve an already-trained model through the robust inference engine and
//! watch the degradation ladder work — the serving counterpart of the
//! paper's §VI-A/§VI-B1 inference-reuse experiments.
//!
//! The script: train a dense CifarNet, checkpoint it, restore it into a
//! reuse-mode network behind [`Engine`], then
//!
//! 1. serve a calm burst at the exact stage (bitwise-dense quality),
//! 2. script an overload with injected slow-batch stalls and watch the
//!    ladder shed quality instead of requests,
//! 3. flood past queue capacity and watch typed load-shedding,
//! 4. print the [`EngineReport`] — every degradation, shed, and retry is
//!    on the record.
//!
//! Run with: `cargo run --release --example inference_reuse`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use adaptive_deep_reuse::adaptive::trainer::BatchSource;
use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::nn::{LrSchedule, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::serve::LadderConfig;

fn main() {
    println!("robust inference serving with graceful reuse degradation\n");

    // Train a dense CifarNet on the synthetic stand-in and checkpoint it.
    let mut rng = AdrRng::seeded(11);
    let cfg = SynthConfig {
        num_images: 240,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 3,
        noise_std: 0.05,
        max_shift: 2,
        image_variability: 0.45,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut net = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    for iter in 0..300 {
        let (images, labels) = source.batch(iter % source.num_batches());
        net.train_batch(&images, &labels, &mut sgd);
    }
    let (probe_images, probe_labels) = source.probe();
    let dense_acc = net.evaluate(&probe_images, &probe_labels).accuracy;
    let ckpt_path = std::env::temp_dir().join("inference_reuse_example.adr1");
    Checkpoint::capture(&mut net).save(&ckpt_path).unwrap();
    println!("trained dense model: probe accuracy {dense_acc:.3}, checkpointed\n");

    // Restore the checkpoint into a reuse-mode network behind the engine.
    // The virtual clock makes the whole demo reproducible: "load" below is
    // scripted via injected stalls, not real machine speed.
    let mut reuse_net = cifarnet::bench_scale(4, ConvMode::reuse_default(), &mut rng);
    Checkpoint::load(&ckpt_path).unwrap().restore(&mut reuse_net).unwrap();
    let engine_cfg = EngineConfig {
        queue_capacity: 16,
        max_batch: 4,
        default_deadline: Duration::from_secs(10),
        target_batch_latency: Duration::from_millis(50),
        ladder: LadderConfig { alpha: 1.0, min_dwell: 1, ..LadderConfig::default() },
    };
    let mut engine =
        Engine::with_clock(reuse_net, engine_cfg, Box::new(ManualClock::new())).unwrap();

    // Single images drawn from the probe split, served one request each.
    let (h, w, c) = (16, 16, 3);
    let per = h * w * c;
    let request = |i: usize| {
        let start = (i % probe_labels.len()) * per;
        Tensor4::from_vec(1, h, w, c, probe_images.as_slice()[start..start + per].to_vec()).unwrap()
    };
    let served_accuracy = |responses: &[(usize, InferResponse)], labels: &[usize]| {
        let hits =
            responses.iter().filter(|(i, resp)| resp.class == labels[*i % labels.len()]).count();
        hits as f32 / responses.len().max(1) as f32
    };

    // Phase 1: calm burst — stays on the exact stage.
    let mut calm = Vec::new();
    for i in 0..16 {
        let id = engine.submit(&request(i)).unwrap();
        for (rid, outcome) in engine.poll() {
            assert_eq!(rid, id);
            calm.push((i, outcome.unwrap()));
        }
    }
    println!(
        "calm burst:     16/16 served at stage {}, accuracy {:.3} (exact = dense bitwise)",
        calm.last().map_or(0, |(_, r)| r.stage),
        served_accuracy(&calm, &probe_labels)
    );

    // Phase 2: overload — injected stalls make every batch 4x the latency
    // target, and the ladder sheds *quality* instead of requests.
    // Phase 1 served 16 single-request batches, so the overload burst
    // starts at batch 16; stall its first three batches.
    engine.set_fault_plan(
        ServeFaultPlan::new()
            .inject_at_batch(16, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(17, ServeFaultKind::SlowBatch { stall_ms: 200 })
            .inject_at_batch(18, ServeFaultKind::SlowBatch { stall_ms: 200 }),
    );
    for i in 0..12 {
        engine.submit(&request(16 + i)).unwrap();
    }
    let mut degraded = Vec::new();
    while engine.queue_depth() > 0 {
        let stage_before = engine.stage();
        for (_, outcome) in engine.poll() {
            degraded.push((stage_before, outcome.unwrap()));
        }
    }
    println!("overload burst: every batch stalled 4x over target; stages served:");
    for (stage, resp) in degraded.iter().step_by(4) {
        println!(
            "                stage {} ({} ms latency, finite logits: {})",
            stage,
            resp.latency.as_millis(),
            resp.logits.iter().all(|v| v.is_finite())
        );
    }

    // Phase 3: flood past queue capacity — the excess sheds, typed.
    let mut shed = 0;
    for i in 0..24 {
        match engine.submit(&request(28 + i)) {
            Ok(_) => {}
            Err(RequestError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    engine.drain();
    println!("flood burst:    24 submitted into a 16-deep queue -> {shed} shed (typed)\n");

    // The record: every degradation, recovery, shed, and retry.
    let report = engine.into_report();
    println!("{}\n", report.summary());
    println!(
        "degradation counters: {} degraded, {} recovered, {} shed, {} quarantined, {} retried",
        report.degraded_steps,
        report.recovered_steps,
        report.shed_overloaded,
        report.quarantined_batches,
        report.retried_batches
    );
    println!("\nExpected: the overload burst walks the ladder down (rising FLOP savings),");
    println!("calm traffic recovers it, and overflow sheds typed instead of buffering.");
    std::fs::remove_file(&ckpt_path).ok();
}
