//! Apply deep reuse to the *inference* of an already-trained model and
//! explore the `{L, H, CR}` knobs — the workflow of the paper's §VI-A/§VI-B1
//! verification experiments.
//!
//! Run with: `cargo run --release --example inference_reuse`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::BatchSource;
use adaptive_deep_reuse::models::{cifarnet, ConvMode};
use adaptive_deep_reuse::nn::conv::Conv2d;
use adaptive_deep_reuse::nn::{Layer, LrSchedule, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;

fn main() {
    println!("deep reuse on a trained model (inference only)\n");

    // Train a dense CifarNet to convergence on the synthetic stand-in.
    let mut rng = AdrRng::seeded(11);
    let cfg = SynthConfig {
        num_images: 240,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 3,
        noise_std: 0.05,
        max_shift: 2,
        image_variability: 0.45,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let mut net = cifarnet::bench_scale(4, ConvMode::Dense, &mut rng);
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    for iter in 0..300 {
        let (images, labels) = source.batch(iter % source.num_batches());
        net.train_batch(&images, &labels, &mut sgd);
    }
    let (probe_images, probe_labels) = source.probe();
    let dense_acc = net.evaluate(&probe_images, &probe_labels).accuracy;
    println!("trained dense model: probe accuracy {dense_acc:.3}\n");

    // Wrap conv1 in a ReuseConv2d that shares its weights, then sweep the
    // clustering knobs and watch accuracy vs remaining ratio.
    let conv1 = net.layers()[0]
        .as_any()
        .and_then(|a| a.downcast_ref::<Conv2d>())
        .expect("layer 0 is conv1");
    let mut reuse = ReuseConv2d::from_dense(conv1, ReuseConfig::new(5, 4, false), &mut rng);

    println!("| L  | H  | r_c    | accuracy | fwd cost vs dense |");
    println!("|----|----|--------|----------|-------------------|");
    for &(l, h) in &[(75, 4), (25, 4), (5, 4), (5, 8), (5, 12), (5, 15)] {
        reuse.set_config(ReuseConfig::new(l, h, false));
        // Evaluate the network with conv1 swapped for the reuse layer.
        let mut x = probe_images.clone();
        x = reuse.forward(&x, adaptive_deep_reuse::nn::Mode::Eval);
        for i in 1..net.len() {
            x = net.layers_mut()[i].forward(&x, adaptive_deep_reuse::nn::Mode::Eval);
        }
        let out = adaptive_deep_reuse::nn::softmax::softmax_cross_entropy(&x, &probe_labels);
        let hits = out.predictions.iter().zip(&probe_labels).filter(|(p, l)| p == l).count();
        let acc = hits as f32 / probe_labels.len() as f32;
        let stats = reuse.stats();
        let baseline = (stats.rows * reuse.geom().k() * reuse.out_channels()) as u64;
        println!(
            "| {l:<2} | {h:<2} | {:.4} | {acc:<8.3} | {:.3}x            |",
            stats.avg_remaining_ratio,
            stats.forward_cost_fraction(baseline),
        );
    }

    // Cluster reuse across batches: feed the same stream twice and watch the
    // reuse rate climb (Algorithm 1).
    println!("\ncluster reuse across batches (L=5, H=12, CR=1):");
    reuse.set_config(ReuseConfig::new(5, 12, true));
    for round in 0..3 {
        for b in 0..4 {
            let (images, _) = source.batch(b);
            reuse.forward(&images, adaptive_deep_reuse::nn::Mode::Eval);
        }
        // Display rounding of a small non-negative mean.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let avg_clusters = reuse.stats().avg_clusters as usize;
        println!(
            "  after round {}: mean reuse rate R = {:.3}, cached clusters per sub-matrix ≈ {}",
            round + 1,
            reuse.mean_reuse_rate(),
            avg_clusters
        );
    }
    println!("\nExpected: accuracy approaches the dense value as H grows or L shrinks,");
    println!("and the reuse rate approaches 1 once the cache has seen the stream.");
}
