//! Explore neuron-vector similarity directly: unfold a convolution input,
//! cluster it with k-means and LSH, and print how much redundancy each
//! finds — the intuition behind Fig. 1/2 of the paper.
//!
//! Run with: `cargo run --release --example similarity_explorer`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::clustering::kmeans::{kmeans, KMeansConfig};
use adaptive_deep_reuse::clustering::lsh::LshTable;
use adaptive_deep_reuse::clustering::normalize::cosine_similarity;
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::tensor::im2col::{im2col, ConvGeom};

fn main() {
    println!("neuron-vector similarity explorer\n");

    // A batch of synthetic "natural" images.
    let mut rng = AdrRng::seeded(123);
    let cfg = SynthConfig {
        num_images: 8,
        num_classes: 2,
        height: 24,
        width: 24,
        channels: 3,
        smoothing_passes: 3,
        noise_std: 0.03,
        max_shift: 2,
        image_variability: 0.45,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    let (images, _) = dataset.batch(0, 8);

    // Unfold for a 5x5 convolution — every row is a receptive field.
    let geom = ConvGeom::new(24, 24, 3, 5, 5, 1, 0).unwrap();
    let unfolded = im2col(&images, &geom);
    let (n, k) = unfolded.shape();
    println!("unfolded input matrix: {n} neuron vectors x {k} elements (N x K)\n");

    // 1. Raw pairwise similarity of a sample of rows.
    let mut high_sim_pairs = 0usize;
    let samples = 2000;
    for _ in 0..samples {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b && cosine_similarity(unfolded.row(a), unfolded.row(b)) > 0.99 {
            high_sim_pairs += 1;
        }
    }
    println!(
        "random row pairs with cosine similarity > 0.99: {:.1}%",
        100.0 * high_sim_pairs as f64 / samples as f64
    );

    // 2. k-means: the quality reference (paper §VI-A).
    for k_clusters in [16, 64, 256] {
        let result = kmeans(
            &unfolded,
            &KMeansConfig { k: k_clusters, max_iters: 10, tolerance: 1e-3 },
            &mut rng,
        );
        println!(
            "k-means k={k_clusters:<4} -> |C| = {:<4} remaining ratio r_c = {:.4}",
            result.table.num_clusters(),
            result.table.remaining_ratio()
        );
    }

    // 3. LSH: the fast online clustering actually used during training.
    println!();
    for h in [4, 8, 12, 16] {
        let lsh = LshTable::new(k, h, &mut rng);
        let (table, _) = lsh.cluster(&unfolded);
        println!(
            "LSH H={h:<2} -> |C| = {:<5} remaining ratio r_c = {:.4} (hash cost {} madds)",
            table.num_clusters(),
            table.remaining_ratio(),
            lsh.hashing_flops(n)
        );
    }

    println!("\nInterpretation: r_c << 1 means most receptive fields are redundant —");
    println!("the computation-reuse opportunity adaptive deep reuse exploits.");
}
