//! Train with Adam + batch normalisation, checkpoint the weights, and
//! resume in a fresh process-like context — the workflow a downstream user
//! needs for long adaptive-deep-reuse trainings.
//!
//! Run with: `cargo run --release --example checkpoint_and_resume`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::BatchSource;
use adaptive_deep_reuse::models::ConvMode;
use adaptive_deep_reuse::nn::batchnorm::BatchNorm;
use adaptive_deep_reuse::nn::checkpoint::Checkpoint;
use adaptive_deep_reuse::nn::dense::Dense;
use adaptive_deep_reuse::nn::optimizer::Adam;
use adaptive_deep_reuse::nn::pool::Pool2d;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;
use adaptive_deep_reuse::tensor::im2col::ConvGeom;

/// A small reuse CNN with batch normalisation after each convolution.
fn build(seed: u64) -> Network {
    let mut rng = AdrRng::seeded(seed);
    let mut net = Network::new((16, 16, 3));
    let g1 = ConvGeom::new(16, 16, 3, 5, 5, 1, 2).unwrap();
    net.push(ConvMode::Reuse(ReuseConfig::new(5, 12, false)).build("conv1", g1, 32, &mut rng));
    net.push(Box::new(BatchNorm::new("bn1", 32)));
    net.push(Box::new(Relu::new("relu1")));
    net.push(Box::new(Pool2d::max("pool1", 3, 2)));
    let g2 = ConvGeom::new(7, 7, 32, 5, 5, 1, 2).unwrap();
    net.push(ConvMode::Reuse(ReuseConfig::new(10, 10, false)).build("conv2", g2, 32, &mut rng));
    net.push(Box::new(BatchNorm::new("bn2", 32)));
    net.push(Box::new(Relu::new("relu2")));
    net.push(Box::new(Pool2d::max("pool2", 3, 2)));
    net.push(Box::new(Dense::new("fc", 3 * 3 * 32, 4, &mut rng)));
    net
}

fn main() {
    println!("checkpoint & resume with Adam + BatchNorm + deep reuse\n");
    let mut rng = AdrRng::seeded(5);
    let cfg = SynthConfig {
        num_images: 200,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 2,
        image_variability: 0.4,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    let mut source = DatasetSource::new(dataset, 16, 32);
    let (probe_x, probe_y) = source.probe();

    // Phase 1: train with Adam for 120 iterations, then checkpoint.
    let mut net = build(7);
    let mut adam = Adam::with_defaults(2e-3);
    for it in 0..120 {
        let (x, y) = source.batch(it % source.num_batches());
        let step = net.train_batch_with(&x, &y, &mut adam);
        if it % 30 == 0 {
            println!("iter {it:>3}: loss {:.4}", step.loss);
        }
    }
    let phase1 = net.evaluate(&probe_x, &probe_y);
    println!("phase 1 done: probe accuracy {:.3}", phase1.accuracy);
    let ckpt_path = std::env::temp_dir().join("adr_example_checkpoint.adr");
    Checkpoint::capture(&mut net).save(&ckpt_path).expect("save checkpoint");
    println!("checkpoint written to {}", ckpt_path.display());

    // Phase 2: a *fresh* network (different init seed) resumes from disk.
    let mut resumed = build(99);
    let cold = resumed.evaluate(&probe_x, &probe_y);
    Checkpoint::load(&ckpt_path)
        .expect("load checkpoint")
        .restore(&mut resumed)
        .expect("architecture matches");
    let warm = resumed.evaluate(&probe_x, &probe_y);
    println!(
        "\nfresh net accuracy {:.3} -> after restore {:.3} (trained: {:.3})",
        cold.accuracy, warm.accuracy, phase1.accuracy
    );

    // Continue training from the checkpoint with a fresh optimiser.
    let mut adam2 = Adam::with_defaults(1e-3);
    for it in 0..60 {
        let (x, y) = source.batch((120 + it) % source.num_batches());
        resumed.train_batch_with(&x, &y, &mut adam2);
    }
    let final_eval = resumed.evaluate(&probe_x, &probe_y);
    println!("after 60 resumed iterations: probe accuracy {:.3}", final_eval.accuracy);
    std::fs::remove_file(&ckpt_path).ok();
}
