//! Crash-safe training: periodic full-state checkpoints, a simulated kill,
//! and a bitwise-identical resume — the workflow a downstream user needs
//! for long adaptive-deep-reuse trainings. A second section shows the
//! lighter parameter-only `Checkpoint` for weight hand-off.
//!
//! Run with: `cargo run --release --example checkpoint_and_resume`

// Test/example code asserts on values it just constructed; unwrap is the idiom.
#![allow(clippy::unwrap_used)]

use adaptive_deep_reuse::adaptive::trainer::BatchSource;
use adaptive_deep_reuse::models::ConvMode;
use adaptive_deep_reuse::nn::batchnorm::BatchNorm;
use adaptive_deep_reuse::nn::checkpoint::Checkpoint;
use adaptive_deep_reuse::nn::dense::Dense;
use adaptive_deep_reuse::nn::relu::Relu;
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;
use adaptive_deep_reuse::tensor::im2col::ConvGeom;

/// A small reuse CNN; the same seed always builds the same network.
fn build(seed: u64) -> Network {
    let mut rng = AdrRng::seeded(seed);
    let mut net = Network::new((16, 16, 3));
    let g1 = ConvGeom::new(16, 16, 3, 5, 5, 1, 2).unwrap();
    net.push(ConvMode::Reuse(ReuseConfig::new(5, 12, false)).build("conv1", g1, 16, &mut rng));
    // Batch norm carries non-learnable running statistics — captured and
    // restored by the TrainState like everything else.
    net.push(Box::new(BatchNorm::new("bn1", 16)));
    net.push(Box::new(Relu::new("relu1")));
    let g2 = ConvGeom::new(16, 16, 16, 3, 3, 2, 1).unwrap();
    net.push(ConvMode::Reuse(ReuseConfig::new(8, 10, false)).build("conv2", g2, 16, &mut rng));
    net.push(Box::new(Relu::new("relu2")));
    net.push(Box::new(Dense::new("fc", 8 * 8 * 16, 4, &mut rng)));
    net
}

fn make_source(seed: u64) -> DatasetSource {
    let mut rng = AdrRng::seeded(seed);
    let cfg = SynthConfig {
        num_images: 200,
        num_classes: 4,
        height: 16,
        width: 16,
        channels: 3,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: 2,
        image_variability: 0.4,
    };
    DatasetSource::new(SynthDataset::generate(&cfg, &mut rng), 16, 32)
}

fn main() {
    println!("crash-safe training: checkpoint, kill, resume\n");
    let trainer =
        Trainer::new(TrainerConfig { max_iterations: 150, eval_every: 25, ..Default::default() });
    let state_path = std::env::temp_dir().join("adr_example_train_state.adrs");
    std::fs::remove_file(&state_path).ok();

    // Phase 1: train under the adaptive strategy with full-state
    // checkpoints every 25 iterations — and simulate a crash at 90.
    let mut net = build(7);
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    let mut source = make_source(5);
    let interrupted = trainer
        .train_with(
            &mut net,
            Strategy::adaptive(),
            &mut source,
            &mut sgd,
            TrainOptions {
                checkpoint: Some(CheckpointPolicy::new(&state_path, 25)),
                halt_after: Some(90),
                ..Default::default()
            },
        )
        .unwrap();
    println!(
        "phase 1 'crashed' after {} iterations (accuracy so far {:.3})",
        interrupted.iterations_run, interrupted.final_accuracy
    );

    // Phase 2: a fresh process — rebuild network + optimiser + data from
    // the same seeds, load the TrainState, and continue. The resumed run
    // finishes exactly as an uninterrupted one would: parameters, SGD
    // momentum, controller stage, FLOP counters, and the batch cursor all
    // come back from the snapshot.
    let state = TrainState::load(&state_path).expect("checkpoint written before the kill");
    println!(
        "\nresuming from {} (captured at iteration {})",
        state_path.display(),
        state.iteration
    );
    let mut net2 = build(7);
    let mut sgd2 =
        Sgd::new(LrSchedule::InverseTime { base: 0.03, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    let mut source2 = make_source(5);
    let finished = trainer
        .train_with(
            &mut net2,
            Strategy::adaptive(),
            &mut source2,
            &mut sgd2,
            TrainOptions { resume: Some(state), ..Default::default() },
        )
        .unwrap();
    println!("\n{}", finished.summary());

    // Hand-off: the lighter parameter-only checkpoint (no optimiser or
    // controller state) is still the right artifact for shipping weights.
    let weights_path = std::env::temp_dir().join("adr_example_weights.adr");
    Checkpoint::capture(&mut net2).save(&weights_path).expect("save weights");
    let mut fresh = build(99);
    Checkpoint::load(&weights_path)
        .expect("load weights")
        .restore(&mut fresh)
        .expect("architecture matches");
    let (probe_x, probe_y) = source2.probe();
    let warm = fresh.evaluate(&probe_x, &probe_y);
    println!("\nparameter-only hand-off: fresh net restored to accuracy {:.3}", warm.accuracy);
    std::fs::remove_file(&state_path).ok();
    std::fs::remove_file(&weights_path).ok();
}
