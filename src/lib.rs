//! # Adaptive Deep Reuse
//!
//! A Rust reproduction of *"Adaptive Deep Reuse: Accelerating CNN Training
//! on the Fly"* (Ning, Guan, Shen — ICDE 2019).
//!
//! This facade crate re-exports the workspace so downstream users (and the
//! `examples/` binaries) can depend on a single crate:
//!
//! * [`tensor`] — matrices, NHWC tensors, im2col, deterministic RNG.
//! * [`nn`] — the from-scratch CNN training stack.
//! * [`clustering`] — LSH, k-means, and the across-batch cluster-reuse cache.
//! * [`reuse`] — the deep-reuse convolution layer (forward + backward reuse).
//! * [`adaptive`] — the paper's contribution: policies, candidate schedules,
//!   the plateau-driven controller, and the three training strategies.
//! * [`data`] — seeded synthetic datasets standing in for CIFAR-10/ImageNet.
//! * [`models`] — CifarNet / AlexNet / VGG-19 builders.
//! * [`serve`] — deadline-aware inference serving: bounded admission,
//!   micro-batching, load-shedding, a reuse degradation ladder, and a
//!   multi-tenant gateway with hot-swappable model replicas.
//! * [`obs`] — deterministic telemetry: metric sinks, span timers,
//!   Prometheus/JSON exporters, and the BENCH document schema.
//! * [`bench`] — the seeded `adr bench` workloads that emit
//!   `BENCH_train.json` / `BENCH_serve.json`.
//!
//! ## Quickstart
//!
//! ```
//! use adaptive_deep_reuse::prelude::*;
//!
//! // A tiny synthetic dataset and a CifarNet-style model.
//! let mut rng = AdrRng::seeded(7);
//! let dataset = SynthDataset::cifar_like(64, 4, &mut rng);
//! let (images, labels) = dataset.batch(0, 8);
//! assert_eq!(images.shape(), (8, 32, 32, 3));
//! assert_eq!(labels.len(), 8);
//! ```

// Tests assert on values they just constructed; unwrap there is the idiom.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bench;
pub mod source;

pub use adr_clustering as clustering;
pub use adr_core as adaptive;
pub use adr_data as data;
pub use adr_models as models;
pub use adr_nn as nn;
pub use adr_obs as obs;
pub use adr_reuse as reuse;
pub use adr_serve as serve;
pub use adr_tensor as tensor;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use crate::source::{DatasetSource, ShuffledSource};
    pub use adr_clustering::lsh::LshTable;
    pub use adr_core::controller::AdaptiveController;
    pub use adr_core::faults::{FaultKind, FaultPlan, ServeFaultKind, ServeFaultPlan};
    pub use adr_core::guardrails::{GuardrailConfig, GuardrailEvent, GuardrailEventKind};
    pub use adr_core::policy::{HRange, LRange};
    pub use adr_core::state::{StateError, TrainState};
    pub use adr_core::strategy::{Strategy, StrategyKind};
    pub use adr_core::trainer::{
        CheckpointPolicy, TrainError, TrainOptions, Trainer, TrainerConfig,
    };
    pub use adr_data::synth::{SynthConfig, SynthDataset};
    pub use adr_models::{alexnet, cifarnet, vgg19};
    pub use adr_nn::{
        Adam, Checkpoint, CheckpointError, Layer, LrSchedule, Mode, Network, Optimizer, Sgd,
    };
    pub use adr_reuse::layer::ReuseConv2d;
    pub use adr_reuse::{ClusterScope, ReuseConfig};
    pub use adr_serve::{
        ArtifactKind, Engine, EngineConfig, EngineError, EngineReport, Gateway, GatewayConfig,
        GatewayReport, InferResponse, LadderConfig, ManualClock, ModelRegistry, MonotonicClock,
        NetFactory, RequestError, ServeEventKind, StagePolicy, SwapError, TenantConfig,
    };
    pub use adr_tensor::rng::AdrRng;
    pub use adr_tensor::{Matrix, Tensor4};
}
