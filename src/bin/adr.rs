//! `adr` — command-line front end for adaptive deep reuse.
//!
//! Subcommands:
//!
//! * `adr train [--model cifarnet|alexnet|vgg19] [--strategy baseline|fixed|adaptive|cluster-reuse]
//!   [--iterations N] [--batch N] [--classes N] [--lr F] [--seed N]
//!   [--checkpoint PATH]` — train a bench-scale model on the synthetic
//!   dataset and print the run report.
//! * `adr eval --checkpoint PATH [--model ...] [--classes N] [--seed N]`
//!   — restore a checkpoint and report probe accuracy.
//! * `adr similarity [--hashes H] [--sub-vector L]` — print the remaining
//!   ratio LSH finds on a fresh synthetic batch (a one-shot Fig. 1 intuition
//!   check).
//!
//! Everything is deterministic given `--seed`.

use std::process::ExitCode;

use adaptive_deep_reuse::adaptive::trainer::{BatchSource, Trainer, TrainerConfig};
use adaptive_deep_reuse::adaptive::Strategy;
use adaptive_deep_reuse::models::{alexnet, cifarnet, vgg19, ConvMode};
use adaptive_deep_reuse::nn::checkpoint::Checkpoint;
use adaptive_deep_reuse::nn::{LrSchedule, Network, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;
use adaptive_deep_reuse::source::DatasetSource;
use adaptive_deep_reuse::tensor::im2col::{im2col, ConvGeom};

/// Minimal `--key value` / `--flag` argument map.
struct Args {
    positional: Vec<String>,
    options: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = std::collections::HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value =
                    it.next().ok_or_else(|| format!("option --{key} is missing a value"))?;
                options.insert(key.to_string(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Self { positional, options })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("option --{key}: cannot parse '{raw}'")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.options.get(key).cloned().unwrap_or_else(|| default.to_string())
    }
}

/// A freshly built network plus its input shape and default batch size.
type BuiltModel = (Network, (usize, usize, usize), usize);

fn build_model(
    name: &str,
    classes: usize,
    mode: ConvMode,
    rng: &mut AdrRng,
) -> Result<BuiltModel, String> {
    match name {
        "cifarnet" => Ok((cifarnet::bench_scale(classes, mode, rng), (16, 16, 3), 16)),
        "alexnet" => Ok((alexnet::bench_scale(classes, mode, rng), (64, 64, 3), 8)),
        "vgg19" => Ok((vgg19::bench_scale(classes, mode, rng), (32, 32, 3), 8)),
        other => Err(format!("unknown model '{other}' (cifarnet | alexnet | vgg19)")),
    }
}

fn make_source(
    input: (usize, usize, usize),
    classes: usize,
    batch: usize,
    seed: u64,
) -> DatasetSource {
    let cfg = SynthConfig {
        num_images: 480,
        num_classes: classes,
        height: input.0,
        width: input.1,
        channels: input.2,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: (input.0 / 10).max(1),
        image_variability: 0.5,
    };
    let dataset = SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed));
    DatasetSource::new(dataset, batch, 32)
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let model = args.get_str("model", "cifarnet");
    let strategy_name = args.get_str("strategy", "adaptive");
    let iterations: usize = args.get("iterations", 300)?;
    let classes: usize = args.get("classes", 4)?;
    let lr: f32 = args.get("lr", 0.02)?;
    let seed: u64 = args.get("seed", 42)?;
    let fixed_l: usize = args.get("sub-vector", 10)?;
    let fixed_h: usize = args.get("hashes", 10)?;

    let (mode, strategy) = match strategy_name.as_str() {
        "baseline" => (ConvMode::Dense, Strategy::baseline()),
        "fixed" => (
            ConvMode::Reuse(ReuseConfig::new(fixed_l, fixed_h, false)),
            Strategy::fixed(fixed_l, fixed_h),
        ),
        "adaptive" => (ConvMode::reuse_default(), Strategy::adaptive()),
        "cluster-reuse" => (
            ConvMode::Reuse(ReuseConfig::new(fixed_l, fixed_h, true)),
            Strategy::cluster_reuse(fixed_l, fixed_h),
        ),
        other => {
            return Err(format!(
                "unknown strategy '{other}' (baseline | fixed | adaptive | cluster-reuse)"
            ))
        }
    };

    let mut rng = AdrRng::seeded(seed);
    let (mut net, input, default_batch) = build_model(&model, classes, mode, &mut rng)?;
    let batch: usize = args.get("batch", default_batch)?;
    let mut source = make_source(input, classes, batch, seed);
    let trainer = Trainer::new(TrainerConfig {
        max_iterations: iterations,
        eval_every: 10,
        ..Default::default()
    });
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: lr, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    println!("training {model} with {strategy_name} for {iterations} iterations ...");
    let report = trainer
        .train(&mut net, strategy, &mut source, &mut sgd)
        .map_err(|e| format!("training failed: {e}"))?;
    println!("{}", report.summary());

    if let Some(path) = args.options.get("checkpoint") {
        Checkpoint::capture(&mut net)
            .save(path)
            .map_err(|e| format!("saving checkpoint to {path}: {e}"))?;
        println!("checkpoint saved to {path}");
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args.options.get("checkpoint").ok_or("eval requires --checkpoint PATH")?;
    let model = args.get_str("model", "cifarnet");
    let classes: usize = args.get("classes", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let mut rng = AdrRng::seeded(seed);
    let (mut net, input, batch) = build_model(&model, classes, ConvMode::Dense, &mut rng)?;
    Checkpoint::load(path)
        .map_err(|e| format!("loading {path}: {e}"))?
        .restore(&mut net)
        .map_err(|e| format!("restoring into {model}: {e}"))?;
    let mut source = make_source(input, classes, batch, seed);
    let (images, labels) = source.probe();
    let eval = net.evaluate(&images, &labels);
    println!("probe accuracy {:.3}, loss {:.4}", eval.accuracy, eval.loss);
    Ok(())
}

fn cmd_similarity(args: &Args) -> Result<(), String> {
    let h: usize = args.get("hashes", 10)?;
    let l: usize = args.get("sub-vector", 75)?;
    let seed: u64 = args.get("seed", 42)?;
    let mut rng = AdrRng::seeded(seed);
    let cfg = SynthConfig {
        num_images: 8,
        num_classes: 2,
        height: 24,
        width: 24,
        channels: 3,
        smoothing_passes: 3,
        noise_std: 0.05,
        max_shift: 2,
        image_variability: 0.5,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    let (images, _) = dataset.batch(0, 8);
    let geom = ConvGeom::new(24, 24, 3, 5, 5, 1, 0).expect("demo geometry constants are valid");
    let unfolded = im2col(&images, &geom);
    let l = l.min(unfolded.cols());
    let lsh = LshTable::new(l, h.clamp(1, 64), &mut rng);
    let (table, _) = lsh.cluster_range(&unfolded, 0);
    println!(
        "{} neuron vectors (window length {l}, H = {h}): |C| = {}, remaining ratio r_c = {:.4}",
        unfolded.rows(),
        table.num_clusters(),
        table.remaining_ratio()
    );
    println!(
        "=> deep reuse would compute {:.1}% of the centroid GEMM rows",
        table.remaining_ratio() * 100.0
    );
    Ok(())
}

const USAGE: &str = "usage: adr <train|eval|similarity> [options]
  adr train      [--model M] [--strategy S] [--iterations N] [--classes N]
                 [--batch N] [--lr F] [--seed N] [--sub-vector L] [--hashes H]
                 [--checkpoint PATH]
  adr eval       --checkpoint PATH [--model M] [--classes N] [--seed N]
  adr similarity [--hashes H] [--sub-vector L] [--seed N]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.positional.first().map(String::as_str) {
        Some("train") => cmd_train(&args),
        Some("eval") => cmd_eval(&args),
        Some("similarity") => cmd_similarity(&args),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
