//! `adr` — command-line front end for adaptive deep reuse.
//!
//! Subcommands:
//!
//! * `adr train [--model cifarnet|alexnet|vgg19] [--strategy baseline|fixed|adaptive|cluster-reuse]
//!   [--iterations N] [--batch N] [--classes N] [--lr F] [--seed N]
//!   [--checkpoint PATH]` — train a bench-scale model on the synthetic
//!   dataset and print the run report.
//! * `adr eval --checkpoint PATH [--model ...] [--classes N] [--seed N]`
//!   — restore a checkpoint and report probe accuracy.
//! * `adr similarity [--hashes H] [--sub-vector L]` — print the remaining
//!   ratio LSH finds on a fresh synthetic batch (a one-shot Fig. 1 intuition
//!   check).
//! * `adr serve --checkpoint PATH [--model ...] [--classes N] [--seed N]
//!   [--queue N] [--max-batch N] [--deadline-ms N] [--demo N] [--listen ADDR]`
//!   — serve a checkpoint through the deadline-aware engine. By default a
//!   line protocol on stdin (`predict <csv>`, `random`, `report`, `healthz`,
//!   `readyz`, `quit`); `--demo N` runs a reproducible burst of N synthetic
//!   requests instead, `--listen HOST:PORT` speaks the same protocol over
//!   TCP, one connection at a time.
//! * `adr serve --registry name=path[,name=path...] [--tenants t=rate:burst[,...]]
//!   [--swap model=path]` — serve a *registry* of named artifacts through
//!   the multi-tenant gateway instead of one engine. The line protocol
//!   grows model/tenant addressing (`predict <model> <tenant> <csv>`,
//!   `random <model> <tenant>`) plus `swap <model> <path>` for
//!   zero-downtime hot swaps; rejections carry typed backoff hints
//!   (`retry after N ms`). `--swap` performs one swap at startup.
//! * `adr bench [--quick] [--json] [--seed N] [--steps N] [--batch N]
//!   [--requests N] [--out-dir DIR]` — run the seeded step-profile and
//!   serving workloads and atomically emit schema-validated
//!   `BENCH_train.json` / `BENCH_serve.json` (DESIGN.md §11);
//!   `--validate FILE` re-checks an existing document instead, and
//!   `--compare-baseline DIR --compare-fresh DIR [--tolerance F]` gates a
//!   fresh pair of documents against committed baselines (FLOP attribution
//!   by relative difference, wall time by per-phase share of layer total).
//!
//! Everything is deterministic given `--seed`.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use adaptive_deep_reuse::serve::{Engine, EngineConfig, ManualClock};

use adaptive_deep_reuse::adaptive::trainer::{BatchSource, Trainer, TrainerConfig};
use adaptive_deep_reuse::adaptive::Strategy;
use adaptive_deep_reuse::models::{alexnet, cifarnet, vgg19, ConvMode};
use adaptive_deep_reuse::nn::checkpoint::Checkpoint;
use adaptive_deep_reuse::nn::{LrSchedule, Network, Sgd};
use adaptive_deep_reuse::prelude::*;
use adaptive_deep_reuse::reuse::ReuseConfig;
use adaptive_deep_reuse::source::DatasetSource;
use adaptive_deep_reuse::tensor::im2col::{im2col, ConvGeom};

/// Minimal `--key value` / `--flag` argument map.
struct Args {
    positional: Vec<String>,
    options: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = std::collections::HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                // A `--key` followed by another option (or nothing) is a
                // boolean flag: `adr bench --quick --json`.
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        it.next().map_or_else(|| "true".to_string(), Clone::clone)
                    }
                    _ => "true".to_string(),
                };
                options.insert(key.to_string(), value);
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Self { positional, options })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("option --{key}: cannot parse '{raw}'")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.options.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v == "true")
    }
}

/// A freshly built network plus its input shape and default batch size.
type BuiltModel = (Network, (usize, usize, usize), usize);

fn build_model(
    name: &str,
    classes: usize,
    mode: ConvMode,
    rng: &mut AdrRng,
) -> Result<BuiltModel, String> {
    match name {
        "cifarnet" => Ok((cifarnet::bench_scale(classes, mode, rng), (16, 16, 3), 16)),
        "alexnet" => Ok((alexnet::bench_scale(classes, mode, rng), (64, 64, 3), 8)),
        "vgg19" => Ok((vgg19::bench_scale(classes, mode, rng), (32, 32, 3), 8)),
        other => Err(format!("unknown model '{other}' (cifarnet | alexnet | vgg19)")),
    }
}

fn make_source(
    input: (usize, usize, usize),
    classes: usize,
    batch: usize,
    seed: u64,
) -> DatasetSource {
    let cfg = SynthConfig {
        num_images: 480,
        num_classes: classes,
        height: input.0,
        width: input.1,
        channels: input.2,
        smoothing_passes: 2,
        noise_std: 0.08,
        max_shift: (input.0 / 10).max(1),
        image_variability: 0.5,
    };
    let dataset = SynthDataset::generate(&cfg, &mut AdrRng::seeded(seed));
    DatasetSource::new(dataset, batch, 32)
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let model = args.get_str("model", "cifarnet");
    let strategy_name = args.get_str("strategy", "adaptive");
    let iterations: usize = args.get("iterations", 300)?;
    let classes: usize = args.get("classes", 4)?;
    let lr: f32 = args.get("lr", 0.02)?;
    let seed: u64 = args.get("seed", 42)?;
    let fixed_l: usize = args.get("sub-vector", 10)?;
    let fixed_h: usize = args.get("hashes", 10)?;

    let (mode, strategy) = match strategy_name.as_str() {
        "baseline" => (ConvMode::Dense, Strategy::baseline()),
        "fixed" => (
            ConvMode::Reuse(ReuseConfig::new(fixed_l, fixed_h, false)),
            Strategy::fixed(fixed_l, fixed_h),
        ),
        "adaptive" => (ConvMode::reuse_default(), Strategy::adaptive()),
        "cluster-reuse" => (
            ConvMode::Reuse(ReuseConfig::new(fixed_l, fixed_h, true)),
            Strategy::cluster_reuse(fixed_l, fixed_h),
        ),
        other => {
            return Err(format!(
                "unknown strategy '{other}' (baseline | fixed | adaptive | cluster-reuse)"
            ))
        }
    };

    let mut rng = AdrRng::seeded(seed);
    let (mut net, input, default_batch) = build_model(&model, classes, mode, &mut rng)?;
    let batch: usize = args.get("batch", default_batch)?;
    let mut source = make_source(input, classes, batch, seed);
    let trainer = Trainer::new(TrainerConfig {
        max_iterations: iterations,
        eval_every: 10,
        ..Default::default()
    });
    let mut sgd =
        Sgd::new(LrSchedule::InverseTime { base: lr, rate: 0.005 }, 0.9, 0.0).with_clip_norm(5.0);
    println!("training {model} with {strategy_name} for {iterations} iterations ...");
    let report = trainer
        .train(&mut net, strategy, &mut source, &mut sgd)
        .map_err(|e| format!("training failed: {e}"))?;
    println!("{}", report.summary());

    if let Some(path) = args.options.get("checkpoint") {
        Checkpoint::capture(&mut net)
            .save(path)
            .map_err(|e| format!("saving checkpoint to {path}: {e}"))?;
        println!("checkpoint saved to {path}");
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args.options.get("checkpoint").ok_or("eval requires --checkpoint PATH")?;
    let model = args.get_str("model", "cifarnet");
    let classes: usize = args.get("classes", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let mut rng = AdrRng::seeded(seed);
    let (mut net, input, batch) = build_model(&model, classes, ConvMode::Dense, &mut rng)?;
    Checkpoint::load(path)
        .map_err(|e| format!("loading {path}: {e}"))?
        .restore(&mut net)
        .map_err(|e| format!("restoring into {model}: {e}"))?;
    let mut source = make_source(input, classes, batch, seed);
    let (images, labels) = source.probe();
    let eval = net.evaluate(&images, &labels);
    println!("probe accuracy {:.3}, loss {:.4}", eval.accuracy, eval.loss);
    Ok(())
}

fn cmd_similarity(args: &Args) -> Result<(), String> {
    let h: usize = args.get("hashes", 10)?;
    let l: usize = args.get("sub-vector", 75)?;
    let seed: u64 = args.get("seed", 42)?;
    let mut rng = AdrRng::seeded(seed);
    let cfg = SynthConfig {
        num_images: 8,
        num_classes: 2,
        height: 24,
        width: 24,
        channels: 3,
        smoothing_passes: 3,
        noise_std: 0.05,
        max_shift: 2,
        image_variability: 0.5,
    };
    let dataset = SynthDataset::generate(&cfg, &mut rng);
    let (images, _) = dataset.batch(0, 8);
    let geom = ConvGeom::new(24, 24, 3, 5, 5, 1, 0).expect("demo geometry constants are valid");
    let unfolded = im2col(&images, &geom);
    let l = l.min(unfolded.cols());
    let lsh = LshTable::new(l, h.clamp(1, 64), &mut rng);
    let (table, _) = lsh.cluster_range(&unfolded, 0);
    println!(
        "{} neuron vectors (window length {l}, H = {h}): |C| = {}, remaining ratio r_c = {:.4}",
        unfolded.rows(),
        table.num_clusters(),
        table.remaining_ratio()
    );
    println!(
        "=> deep reuse would compute {:.1}% of the centroid GEMM rows",
        table.remaining_ratio() * 100.0
    );
    Ok(())
}

/// One line of the serving protocol against a live engine. Returns the
/// response text, or `None` when the client asked to quit.
fn serve_line(engine: &mut Engine, rng: &mut AdrRng, line: &str) -> Option<String> {
    let line = line.trim();
    let (h, w, c) = engine.input_shape();
    let answer = |outcome: Vec<Result<adaptive_deep_reuse::serve::InferResponse, _>>| -> String {
        match outcome.into_iter().next() {
            Some(Ok(resp)) => format!(
                "class {} (stage {}, {} ms) logits {:?}",
                resp.class,
                resp.stage,
                resp.latency.as_millis(),
                resp.logits
            ),
            Some(Err(e)) => format!("rejected: {e}"),
            None => "rejected: no response".to_string(),
        }
    };
    if let Some(csv) = line.strip_prefix("predict ") {
        let values: Result<Vec<f32>, _> = csv.split(',').map(|v| v.trim().parse()).collect();
        let values = match values {
            Ok(v) => v,
            Err(e) => return Some(format!("rejected: bad float in request: {e}")),
        };
        let Some(image) = Tensor4::from_vec(1, h, w, c, values) else {
            return Some(format!("rejected: expected {} values for {h}x{w}x{c}", h * w * c));
        };
        return Some(answer(engine.serve_all(&[image])));
    }
    match line {
        "random" => {
            let image = Tensor4::from_fn(1, h, w, c, |_, _, _, _| rng.uniform());
            Some(answer(engine.serve_all(&[image])))
        }
        "report" => Some(engine.report().summary()),
        "healthz" => Some(if engine.healthy() { "ok".into() } else { "unhealthy".into() }),
        "readyz" => Some(if engine.ready() { "ready".into() } else { "not ready".into() }),
        "quit" => None,
        "" => Some(String::new()),
        other => Some(format!(
            "unknown command '{other}' (predict <csv> | random | report | healthz | readyz | quit)"
        )),
    }
}

/// Formats one gateway inference outcome for the line protocol. Typed
/// rejections render through their `Display` impls, which carry the
/// backoff hints (`retry after N ms` for rate-limited and overloaded).
fn gateway_answer(outcome: Result<InferResponse, RequestError>) -> String {
    match outcome {
        Ok(resp) => format!(
            "class {} (stage {}, {} ms) logits {:?}",
            resp.class,
            resp.stage,
            resp.latency.as_millis(),
            resp.logits
        ),
        Err(e) => format!("rejected: {e}"),
    }
}

/// One line of the multi-tenant serving protocol against a live gateway.
/// Returns the response text, or `None` when the client asked to quit.
fn gateway_line(gw: &mut Gateway, rng: &mut AdrRng, line: &str) -> Option<String> {
    let line = line.trim();
    let submit_and_serve = |gw: &mut Gateway, model: &str, tenant: &str, image: &Tensor4| {
        match gw.submit(model, tenant, image) {
            // Each protocol line serves its own request, so the drain holds
            // exactly the one just admitted.
            Ok(id) => gw
                .drain()
                .into_iter()
                .find(|(rid, _)| *rid == id)
                .map_or_else(|| "rejected: no response".to_string(), |(_, r)| gateway_answer(r)),
            Err(e) => format!("rejected: {e}"),
        }
    };
    if let Some(rest) = line.strip_prefix("predict ") {
        let mut parts = rest.splitn(3, ' ');
        let (Some(model), Some(tenant), Some(csv)) = (parts.next(), parts.next(), parts.next())
        else {
            return Some("rejected: usage is predict <model> <tenant> <csv>".to_string());
        };
        let Some((h, w, c)) = gw.input_shape(model) else {
            return Some(format!("rejected: unknown model '{model}': not in the registry"));
        };
        let values: Result<Vec<f32>, _> = csv.split(',').map(|v| v.trim().parse()).collect();
        let values = match values {
            Ok(v) => v,
            Err(e) => return Some(format!("rejected: bad float in request: {e}")),
        };
        let Some(image) = Tensor4::from_vec(1, h, w, c, values) else {
            return Some(format!("rejected: expected {} values for {h}x{w}x{c}", h * w * c));
        };
        return Some(submit_and_serve(gw, model, tenant, &image));
    }
    if let Some(rest) = line.strip_prefix("random ") {
        let mut parts = rest.splitn(2, ' ');
        let (Some(model), Some(tenant)) = (parts.next(), parts.next()) else {
            return Some("rejected: usage is random <model> <tenant>".to_string());
        };
        let Some((h, w, c)) = gw.input_shape(model) else {
            return Some(format!("rejected: unknown model '{model}': not in the registry"));
        };
        let image = Tensor4::from_fn(1, h, w, c, |_, _, _, _| rng.uniform());
        return Some(submit_and_serve(gw, model, tenant, &image));
    }
    if let Some(rest) = line.strip_prefix("swap ") {
        let mut parts = rest.splitn(2, ' ');
        let (Some(model), Some(path)) = (parts.next(), parts.next()) else {
            return Some("rejected: usage is swap <model> <path>".to_string());
        };
        return Some(match gw.swap(model, path) {
            Ok(generation) => format!("swapped '{model}' to generation {generation}"),
            Err(e) => format!("rejected: {e}"),
        });
    }
    match line {
        "report" => Some(gw.report().summary()),
        "healthz" => Some(if gw.healthy() { "ok".into() } else { "unhealthy".into() }),
        "readyz" => Some(if gw.ready() { "ready".into() } else { "not ready".into() }),
        "quit" => None,
        "" => Some(String::new()),
        other => Some(format!(
            "unknown command '{other}' (predict <model> <tenant> <csv> | random <model> <tenant> \
             | swap <model> <path> | report | healthz | readyz | quit)"
        )),
    }
}

/// Parses `--registry "name=path[,name=path...]"`. The artifact kind is
/// inferred from the path: `.adrs` loads the model half of a train-state
/// snapshot, anything else parses as an `ADR1` checkpoint.
fn parse_registry(spec: &str) -> Result<Vec<(String, String, ArtifactKind)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("--registry entry '{entry}' is not name=path"))?;
        if name.is_empty() || path.is_empty() {
            return Err(format!("--registry entry '{entry}' has an empty name or path"));
        }
        let kind = if path.ends_with(".adrs") { ArtifactKind::Adrs } else { ArtifactKind::Adr1 };
        out.push((name.to_string(), path.to_string(), kind));
    }
    Ok(out)
}

/// Parses `--tenants "name=rate:burst[,name=rate:burst...]"`.
fn parse_tenants(
    spec: &str,
    default_deadline: Duration,
) -> Result<Vec<(String, TenantConfig)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let (name, policy) = entry
            .split_once('=')
            .ok_or_else(|| format!("--tenants entry '{entry}' is not name=rate:burst"))?;
        let (rate, burst) = policy
            .split_once(':')
            .ok_or_else(|| format!("--tenants entry '{entry}' is not name=rate:burst"))?;
        let rate_per_sec: u64 = rate
            .parse()
            .map_err(|_| format!("--tenants entry '{entry}': cannot parse rate '{rate}'"))?;
        let burst: u64 = burst
            .parse()
            .map_err(|_| format!("--tenants entry '{entry}': cannot parse burst '{burst}'"))?;
        out.push((
            name.to_string(),
            TenantConfig { rate_per_sec, burst, default_deadline, ..TenantConfig::default() },
        ));
    }
    Ok(out)
}

/// The multi-tenant serving mode: `adr serve --registry ... [--tenants ...]`.
fn cmd_serve_gateway(args: &Args, spec: &str) -> Result<(), String> {
    let model = args.get_str("model", "cifarnet");
    let classes: usize = args.get("classes", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let queue: usize = args.get("queue", 32)?;
    let max_batch: usize = args.get("max-batch", 8)?;
    let deadline_ms: u64 = args.get("deadline-ms", 250)?;
    let demo: usize = args.get("demo", 0)?;

    // Validate the architecture name once, up front; per-entry factories
    // can then rebuild it infallibly on every registration and hot swap.
    let mut rng = AdrRng::seeded(seed);
    build_model(&model, classes, ConvMode::reuse_default(), &mut rng)?;

    let cfg = GatewayConfig { queue_capacity: queue, max_batch, ..GatewayConfig::default() };
    // Demo bursts run on the virtual clock so the printed report is
    // reproducible for a given seed.
    let mut gateway = if demo > 0 {
        Gateway::with_clock(cfg, Box::new(ManualClock::new()))
    } else {
        Gateway::new(cfg)
    }
    .map_err(|e| format!("building gateway: {e}"))?;

    for (name, path, kind) in parse_registry(spec)? {
        let arch = model.clone();
        let factory: NetFactory = Box::new(move || {
            let mut rng = AdrRng::seeded(seed);
            let (net, _, _) = build_model(&arch, classes, ConvMode::reuse_default(), &mut rng)
                .expect("architecture name validated at startup");
            net
        });
        gateway
            .register_model(&name, kind, &path, factory)
            .map_err(|e| format!("registering '{name}' from {path}: {e}"))?;
    }
    let default_deadline = Duration::from_millis(deadline_ms);
    for (name, tenant_cfg) in
        parse_tenants(&args.get_str("tenants", "default=100:8"), default_deadline)?
    {
        gateway
            .add_tenant(&name, tenant_cfg)
            .map_err(|e| format!("adding tenant '{name}': {e}"))?;
    }
    if let Some(swap) = args.options.get("swap") {
        let (swap_model, path) =
            swap.split_once('=').ok_or_else(|| format!("--swap '{swap}' is not model=path"))?;
        let generation =
            gateway.swap(swap_model, path).map_err(|e| format!("swapping '{swap_model}': {e}"))?;
        println!("swapped '{swap_model}' to generation {generation}");
    }

    let models = gateway.models().join(", ");
    let tenants = gateway.tenant_names().join(", ");
    if demo > 0 {
        let mut request_rng = rng.split(1);
        let model_names: Vec<String> = gateway.models().iter().map(ToString::to_string).collect();
        let tenant_names: Vec<String> =
            gateway.tenant_names().iter().map(ToString::to_string).collect();
        for i in 0..demo {
            let model = &model_names[i % model_names.len()];
            let tenant = &tenant_names[i % tenant_names.len()];
            let Some((h, w, c)) = gateway.input_shape(model) else { continue };
            let image = Tensor4::from_fn(1, h, w, c, |_, _, _, _| request_rng.uniform());
            let _ = gateway.submit(model, tenant, &image);
        }
        let served = gateway.drain().iter().filter(|(_, r)| r.is_ok()).count();
        println!("demo burst: {served}/{demo} served");
        println!("{}", gateway.report().summary());
        return Ok(());
    }

    if let Some(addr) = args.options.get("listen") {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        println!("gateway serving [{models}] for tenants [{tenants}] on {addr}");
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| format!("accepting connection: {e}"))?;
            let mut writer = stream.try_clone().map_err(|e| format!("cloning connection: {e}"))?;
            let reader = std::io::BufReader::new(stream);
            for line in reader.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                match gateway_line(&mut gateway, &mut rng, &line) {
                    Some(reply) => {
                        if writeln!(writer, "{reply}").is_err() {
                            break;
                        }
                    }
                    None => return Ok(()),
                }
            }
        }
        return Ok(());
    }

    println!(
        "gateway serving [{models}] for tenants [{tenants}] on stdin (predict <model> <tenant> \
         <csv> | random <model> <tenant> | swap <model> <path> | report | healthz | readyz | quit)"
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        match gateway_line(&mut gateway, &mut rng, &line) {
            Some(reply) => println!("{reply}"),
            None => break,
        }
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if let Some(spec) = args.options.get("registry") {
        let spec = spec.clone();
        return cmd_serve_gateway(args, &spec);
    }
    let path = args.options.get("checkpoint").ok_or("serve requires --checkpoint PATH")?;
    let model = args.get_str("model", "cifarnet");
    let classes: usize = args.get("classes", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let queue: usize = args.get("queue", 32)?;
    let max_batch: usize = args.get("max-batch", 8)?;
    let deadline_ms: u64 = args.get("deadline-ms", 250)?;
    let demo: usize = args.get("demo", 0)?;

    let mut rng = AdrRng::seeded(seed);
    // Reuse-mode layers give the engine its degradation dial; dense-trained
    // checkpoints restore into them slot-for-slot.
    let (net, _, _) = build_model(&model, classes, ConvMode::reuse_default(), &mut rng)?;
    let cfg = EngineConfig {
        queue_capacity: queue,
        max_batch,
        default_deadline: Duration::from_millis(deadline_ms),
        ..EngineConfig::default()
    };

    if demo > 0 {
        // Demo bursts run on the virtual clock so the printed report is
        // reproducible for a given seed.
        let mut demo_net = net;
        Checkpoint::load(path)
            .map_err(|e| format!("loading {path}: {e}"))?
            .restore(&mut demo_net)
            .map_err(|e| format!("restoring into {model}: {e}"))?;
        let mut engine = Engine::with_clock(demo_net, cfg, Box::new(ManualClock::new()))
            .map_err(|e| format!("building engine: {e}"))?;
        let (h, w, c) = engine.input_shape();
        let mut request_rng = rng.split(1);
        let images: Vec<Tensor4> = (0..demo)
            .map(|_| Tensor4::from_fn(1, h, w, c, |_, _, _, _| request_rng.uniform()))
            .collect();
        let served = engine.serve_all(&images).iter().filter(|r| r.is_ok()).count();
        println!("demo burst: {served}/{demo} served");
        println!("{}", engine.report().summary());
        return Ok(());
    }

    let mut engine = Engine::load_checkpoint(path, net, cfg)
        .map_err(|e| format!("loading {path} into {model}: {e}"))?;

    if let Some(addr) = args.options.get("listen") {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        println!("serving {model} from {path} on {addr}");
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| format!("accepting connection: {e}"))?;
            let mut writer = stream.try_clone().map_err(|e| format!("cloning connection: {e}"))?;
            let reader = std::io::BufReader::new(stream);
            for line in reader.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                match serve_line(&mut engine, &mut rng, &line) {
                    Some(reply) => {
                        if writeln!(writer, "{reply}").is_err() {
                            break;
                        }
                    }
                    None => return Ok(()),
                }
            }
        }
        return Ok(());
    }

    println!("serving {model} from {path} on stdin (predict <csv> | random | report | healthz | readyz | quit)");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        match serve_line(&mut engine, &mut rng, &line) {
            Some(reply) => println!("{reply}"),
            None => break,
        }
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    use adaptive_deep_reuse::bench::{run_serve_bench, run_train_bench, BenchConfig};
    use adaptive_deep_reuse::obs;

    // `adr bench --validate FILE` re-checks an already emitted document —
    // this is what CI runs against the uploaded artifacts.
    if let Some(path) = args.options.get("validate") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let doc = obs::json::Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        obs::bench::validate(&doc).map_err(|e| format!("{path}: schema violation: {e}"))?;
        println!(
            "{path}: ok ({})",
            doc.get("schema").and_then(obs::json::Json::as_str).unwrap_or("?")
        );
        return Ok(());
    }

    // `adr bench --compare-baseline DIR --compare-fresh DIR [--tolerance F]`
    // gates a fresh pair of BENCH documents against committed baselines —
    // CI's perf-regression check.
    if let Some(base_dir) = args.options.get("compare-baseline") {
        let fresh_dir = args
            .options
            .get("compare-fresh")
            .ok_or("--compare-baseline needs --compare-fresh <dir>")?;
        let tolerance: f64 = args.get("tolerance", 0.15)?;
        let load = |dir: &str, name: &str| -> Result<obs::json::Json, String> {
            let path = std::path::Path::new(dir).join(name);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            obs::json::Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
        };
        let mut violations = adaptive_deep_reuse::bench::compare_train(
            &load(base_dir, "BENCH_train.json")?,
            &load(fresh_dir, "BENCH_train.json")?,
            tolerance,
        );
        violations.extend(adaptive_deep_reuse::bench::compare_serve(
            &load(base_dir, "BENCH_serve.json")?,
            &load(fresh_dir, "BENCH_serve.json")?,
            tolerance,
        ));
        if violations.is_empty() {
            println!(
                "bench compare: {fresh_dir} matches {base_dir} within {:.0}% tolerance",
                tolerance * 100.0
            );
            return Ok(());
        }
        for v in &violations {
            eprintln!("bench compare: {v}");
        }
        return Err(format!(
            "{} bench regression(s) beyond {:.0}% tolerance — if intentional, re-baseline by \
             committing the fresh BENCH documents",
            violations.len(),
            tolerance * 100.0
        ));
    }

    let mut cfg = if args.flag("quick") { BenchConfig::quick() } else { BenchConfig::full() };
    cfg.seed = args.get("seed", cfg.seed)?;
    cfg.steps = args.get("steps", cfg.steps)?;
    cfg.batch = args.get("batch", cfg.batch)?;
    cfg.requests = args.get("requests", cfg.requests)?;
    let out_dir = args.get_str("out-dir", ".");

    let train_doc = run_train_bench(&cfg);
    obs::bench::validate(&train_doc).map_err(|e| format!("BENCH_train schema violation: {e}"))?;
    let serve_doc = run_serve_bench(&cfg)?;
    obs::bench::validate(&serve_doc).map_err(|e| format!("BENCH_serve schema violation: {e}"))?;

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    let train_path = std::path::Path::new(&out_dir).join("BENCH_train.json");
    let serve_path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    obs::export::write_json(&train_path, &train_doc)
        .map_err(|e| format!("writing {}: {e}", train_path.display()))?;
    obs::export::write_json(&serve_path, &serve_doc)
        .map_err(|e| format!("writing {}: {e}", serve_path.display()))?;

    if args.flag("json") {
        println!("{}", train_doc.render_pretty());
        println!("{}", serve_doc.render_pretty());
    } else {
        let savings = train_doc
            .get("totals")
            .and_then(|t| t.get("flop_savings"))
            .and_then(obs::json::Json::as_f64)
            .unwrap_or(0.0);
        println!(
            "train: {} steps, batch {}, seed {} -> {:.1}% forward FLOPs saved",
            cfg.steps,
            cfg.batch,
            cfg.seed,
            savings * 100.0
        );
        let completed = serve_doc
            .get("counters")
            .and_then(|c| c.get("completed"))
            .and_then(obs::json::Json::as_u64)
            .unwrap_or(0);
        println!("serve: {completed}/{} requests completed", cfg.requests);
        println!("wrote {} and {}", train_path.display(), serve_path.display());
    }
    Ok(())
}

const USAGE: &str = "usage: adr <train|eval|similarity|serve|bench> [options]
  adr train      [--model M] [--strategy S] [--iterations N] [--classes N]
                 [--batch N] [--lr F] [--seed N] [--sub-vector L] [--hashes H]
                 [--checkpoint PATH]
  adr eval       --checkpoint PATH [--model M] [--classes N] [--seed N]
  adr similarity [--hashes H] [--sub-vector L] [--seed N]
  adr serve      --checkpoint PATH [--model M] [--classes N] [--seed N]
                 [--queue N] [--max-batch N] [--deadline-ms N]
                 [--demo N] [--listen HOST:PORT]
  adr serve      --registry NAME=PATH[,NAME=PATH...] [--tenants T=RATE:BURST[,...]]
                 [--swap MODEL=PATH] [--model M] [--classes N] [--seed N]
                 [--queue N] [--max-batch N] [--deadline-ms N]
                 [--demo N] [--listen HOST:PORT]
  adr bench      [--quick] [--json] [--seed N] [--steps N] [--batch N]
                 [--requests N] [--out-dir DIR] | --validate FILE
                 | --compare-baseline DIR --compare-fresh DIR [--tolerance F]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.positional.first().map(String::as_str) {
        Some("train") => cmd_train(&args),
        Some("eval") => cmd_eval(&args),
        Some("similarity") => cmd_similarity(&args),
        Some("serve") => cmd_serve(&args),
        Some("bench") => cmd_bench(&args),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
