//! Ready-made [`BatchSource`] adapters for the bundled datasets.

use adr_core::trainer::BatchSource;
use adr_data::synth::SynthDataset;
use adr_tensor::rng::AdrRng;
use adr_tensor::Tensor4;

/// A [`BatchSource`] over a [`SynthDataset`]: the head of the dataset is the
/// cyclic training stream, the tail (`probe_size` images) is the held-out
/// probe batch used for accuracy checks and the adaptive controller's
/// Amendment tests.
pub struct DatasetSource {
    dataset: SynthDataset,
    batch_size: usize,
    train_len: usize,
    probe: (Tensor4, Vec<usize>),
}

impl DatasetSource {
    /// Splits off the last `probe_size` images as the probe batch.
    ///
    /// # Panics
    /// Panics unless at least one full training batch remains after the
    /// probe is removed.
    pub fn new(dataset: SynthDataset, batch_size: usize, probe_size: usize) -> Self {
        assert!(probe_size >= 1, "probe must be non-empty");
        let train_len = dataset.len().checked_sub(probe_size).expect("dataset smaller than probe");
        assert!(train_len >= batch_size, "not enough images for one training batch");
        let probe_indices: Vec<usize> = (train_len..dataset.len()).collect();
        let probe = dataset.gather(&probe_indices);
        Self { dataset, batch_size, train_len, probe }
    }

    /// The training batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Images available to the training stream.
    pub fn train_len(&self) -> usize {
        self.train_len
    }

    /// Borrows the wrapped dataset.
    pub fn dataset(&self) -> &SynthDataset {
        &self.dataset
    }
}

impl BatchSource for DatasetSource {
    fn num_batches(&self) -> usize {
        (self.train_len / self.batch_size).max(1)
    }

    fn batch(&mut self, index: usize) -> (Tensor4, Vec<usize>) {
        let start = (index * self.batch_size) % self.train_len;
        let indices: Vec<usize> =
            (0..self.batch_size).map(|i| (start + i) % self.train_len).collect();
        self.dataset.gather(&indices)
    }

    fn probe(&mut self) -> (Tensor4, Vec<usize>) {
        self.probe.clone()
    }

    // `batch(index)` is a pure function of `index`, so the default empty
    // cursor from `BatchSource` is already fully resumable.
}

#[cfg(test)]
mod tests {
    use super::*;
    use adr_tensor::rng::AdrRng;

    #[test]
    fn probe_is_disjoint_tail() {
        let mut rng = AdrRng::seeded(1);
        let dataset = SynthDataset::cifar_like(40, 4, &mut rng);
        let mut source = DatasetSource::new(dataset, 8, 8);
        assert_eq!(source.train_len(), 32);
        assert_eq!(source.num_batches(), 4);
        let (probe, labels) = source.probe();
        assert_eq!(probe.batch(), 8);
        assert_eq!(labels.len(), 8);
    }

    #[test]
    #[should_panic(expected = "not enough images")]
    fn oversized_batch_panics() {
        let mut rng = AdrRng::seeded(2);
        let dataset = SynthDataset::cifar_like(10, 2, &mut rng);
        DatasetSource::new(dataset, 16, 4);
    }
}

/// A [`BatchSource`] that reshuffles the training stream every epoch (the
/// paper shuffles inputs randomly before feeding the network, §VI), while
/// still holding out a fixed probe batch.
///
/// Unlike [`DatasetSource`], the `index` passed to [`BatchSource::batch`]
/// is ignored — batches come from an epoch-shuffled stream, which is the
/// realistic training setting. Runs remain deterministic per seed.
pub struct ShuffledSource {
    dataset: SynthDataset,
    batch_size: usize,
    train_len: usize,
    probe: (Tensor4, Vec<usize>),
    order: Vec<usize>,
    cursor: usize,
    rng: AdrRng,
}

impl ShuffledSource {
    /// Splits off the last `probe_size` images as the probe batch and
    /// shuffles the rest with `rng`.
    ///
    /// # Panics
    /// Panics unless at least one full training batch remains.
    pub fn new(
        dataset: SynthDataset,
        batch_size: usize,
        probe_size: usize,
        mut rng: AdrRng,
    ) -> Self {
        assert!(probe_size >= 1, "probe must be non-empty");
        let train_len = dataset.len().checked_sub(probe_size).expect("dataset smaller than probe");
        assert!(train_len >= batch_size, "not enough images for one training batch");
        let probe_indices: Vec<usize> = (train_len..dataset.len()).collect();
        let probe = dataset.gather(&probe_indices);
        let mut order: Vec<usize> = (0..train_len).collect();
        rng.shuffle(&mut order);
        Self { dataset, batch_size, train_len, probe, order, cursor: 0, rng }
    }

    /// Consumes the next shuffled batch (see also [`EpochBatcher`], the
    /// plain iterator this mirrors for whole datasets).
    fn next_batch(&mut self) -> (Tensor4, Vec<usize>) {
        if self.cursor + self.batch_size > self.train_len {
            self.rng.shuffle(&mut self.order);
            self.cursor = 0;
        }
        let idx = &self.order[self.cursor..self.cursor + self.batch_size];
        self.cursor += self.batch_size;
        self.dataset.gather(idx)
    }
}

impl BatchSource for ShuffledSource {
    fn num_batches(&self) -> usize {
        (self.train_len / self.batch_size).max(1)
    }

    fn batch(&mut self, _index: usize) -> (Tensor4, Vec<usize>) {
        self.next_batch()
    }

    fn probe(&mut self) -> (Tensor4, Vec<usize>) {
        self.probe.clone()
    }

    // Unlike `DatasetSource`, this source is stateful: the epoch
    // permutation, cursor, and RNG stream position must all survive a
    // checkpoint for a resumed run to see the same batches.
    //
    // Layout: [rng.words; 4] ++ [spare_flag, spare_bits] ++ [cursor]
    //         ++ [order_len] ++ order
    fn snapshot_state(&self) -> Vec<u64> {
        let rng = self.rng.snapshot();
        let mut out = Vec::with_capacity(8 + self.order.len());
        out.extend_from_slice(&rng.words);
        match rng.spare_gauss {
            Some(v) => {
                out.push(1);
                out.push(u64::from(v.to_bits()));
            }
            None => {
                out.push(0);
                out.push(0);
            }
        }
        out.push(self.cursor as u64);
        out.push(self.order.len() as u64);
        out.extend(self.order.iter().map(|&i| i as u64));
        out
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), String> {
        let err = |what: &str| format!("shuffled-source cursor: {what}");
        if state.len() < 8 {
            return Err(err("fewer than 8 header words"));
        }
        let words = [state[0], state[1], state[2], state[3]];
        let spare_gauss = match state[4] {
            0 => None,
            1 => {
                let bits =
                    u32::try_from(state[5]).map_err(|_| err("spare-gauss bits exceed 32 bits"))?;
                Some(f32::from_bits(bits))
            }
            _ => return Err(err("bad spare-gauss flag")),
        };
        let cursor = usize::try_from(state[6]).map_err(|_| err("cursor overflows usize"))?;
        let order_len =
            usize::try_from(state[7]).map_err(|_| err("order length overflows usize"))?;
        if order_len != self.train_len {
            return Err(err(&format!(
                "permutation covers {order_len} images, source has {}",
                self.train_len
            )));
        }
        if state.len() != 8 + order_len {
            return Err(err("length disagrees with recorded permutation size"));
        }
        if cursor > self.train_len {
            return Err(err("cursor past the end of the epoch"));
        }
        let mut order = Vec::with_capacity(order_len);
        for &w in &state[8..] {
            let i = usize::try_from(w).map_err(|_| err("index overflows usize"))?;
            if i >= self.train_len {
                return Err(err("permutation index out of range"));
            }
            order.push(i);
        }
        self.rng = AdrRng::from_snapshot(adr_tensor::rng::RngState { words, spare_gauss });
        self.cursor = cursor;
        self.order = order;
        Ok(())
    }
}

/// Keep the simple [`Batcher`] reachable from the facade for users who want
/// plain epoch iteration without the probe split.
pub use adr_data::batcher::Batcher as EpochBatcher;

#[cfg(test)]
mod shuffled_tests {
    use super::*;

    #[test]
    fn shuffled_source_covers_each_epoch_once() {
        let mut rng = AdrRng::seeded(1);
        let dataset = SynthDataset::cifar_like(40, 4, &mut rng);
        let mut source = ShuffledSource::new(dataset, 8, 8, AdrRng::seeded(2));
        assert_eq!(source.num_batches(), 4);
        // One epoch = 4 batches of 8 over 32 distinct training images.
        let mut seen = std::collections::HashSet::new();
        for b in 0..4 {
            let (images, _) = source.batch(b);
            for i in 0..images.batch() {
                let key: Vec<u32> =
                    images.image(i).as_slice().iter().map(|v| v.to_bits()).collect();
                assert!(seen.insert(key), "image repeated within an epoch");
            }
        }
    }

    #[test]
    fn shuffled_source_cursor_round_trips_mid_epoch() {
        let mut rng = AdrRng::seeded(5);
        let dataset = SynthDataset::cifar_like(30, 2, &mut rng);
        let mut a = ShuffledSource::new(dataset.clone(), 6, 6, AdrRng::seeded(11));
        // Advance past an epoch boundary so the reshuffled RNG state and a
        // mid-epoch cursor are both live.
        for i in 0..5 {
            let _ = a.batch(i);
        }
        let cursor = a.snapshot_state();
        let mut b = ShuffledSource::new(dataset, 6, 6, AdrRng::seeded(999));
        b.restore_state(&cursor).unwrap();
        for i in 0..6 {
            let (xa, ya) = a.batch(i);
            let (xb, yb) = b.batch(i);
            assert_eq!(ya, yb);
            assert_eq!(xa.as_slice(), xb.as_slice());
        }
    }

    #[test]
    fn shuffled_source_rejects_malformed_cursors() {
        let mut rng = AdrRng::seeded(6);
        let dataset = SynthDataset::cifar_like(30, 2, &mut rng);
        let mut s = ShuffledSource::new(dataset, 6, 6, AdrRng::seeded(12));
        let good = s.snapshot_state();
        assert!(s.restore_state(&[]).is_err(), "too short");
        assert!(s.restore_state(&good[..good.len() - 1]).is_err(), "truncated order");
        let mut wrong_len = good.clone();
        wrong_len[7] = 3;
        assert!(s.restore_state(&wrong_len).is_err(), "wrong permutation size");
        let mut oob = good.clone();
        let last = oob.len() - 1;
        oob[last] = 10_000;
        assert!(s.restore_state(&oob).is_err(), "out-of-range index");
        assert!(s.restore_state(&good).is_ok());
    }

    #[test]
    fn shuffled_source_is_deterministic_per_seed() {
        let mut rng = AdrRng::seeded(3);
        let dataset = SynthDataset::cifar_like(30, 2, &mut rng);
        let mut a = ShuffledSource::new(dataset.clone(), 6, 6, AdrRng::seeded(9));
        let mut b = ShuffledSource::new(dataset, 6, 6, AdrRng::seeded(9));
        for i in 0..8 {
            let (xa, ya) = a.batch(i);
            let (xb, yb) = b.batch(i);
            assert_eq!(ya, yb);
            assert_eq!(xa.as_slice(), xb.as_slice());
        }
    }
}
