//! The `adr bench` workloads: a seeded step-profile training run and a
//! seeded serving burst, reduced to the machine-readable BENCH documents
//! (`adr_obs::bench::TRAIN_SCHEMA` / `SERVE_SCHEMA`, DESIGN.md §11).
//!
//! Both workloads mirror the determinism suite's construction so the
//! emitted *values* (FLOPs, ratios, counters) are bitwise-reproducible for
//! a fixed seed; only the `*wall_ns` fields vary run to run.

use crate::models::{cifarnet, ConvMode};
use crate::prelude::*;
use adr_obs::json::Json;
use adr_obs::{Phase, Recorder, PHASE_TIME_METRIC};
use std::rc::Rc;
use std::time::Instant;

/// Workload sizing for one `adr bench` invocation.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Output classes of the CifarNet-scale model.
    pub classes: usize,
    /// Training batch size.
    pub batch: usize,
    /// Training steps in the step profile.
    pub steps: usize,
    /// Requests in the serving burst.
    pub requests: usize,
    /// Seed for model init and synthetic data.
    pub seed: u64,
    /// Whether this is the reduced CI profile.
    pub quick: bool,
}

impl BenchConfig {
    /// The reduced profile CI runs (`adr bench --quick`).
    pub fn quick() -> Self {
        Self { classes: 4, batch: 4, steps: 2, requests: 8, seed: 42, quick: true }
    }

    /// The default profile.
    pub fn full() -> Self {
        Self { classes: 4, batch: 8, steps: 6, requests: 24, seed: 42, quick: false }
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn u64_of(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// One pass of the step-profile training workload; returns the final loss.
fn train_workload(cfg: &BenchConfig) -> (Network, f32) {
    let mut rng = AdrRng::seeded(cfg.seed);
    let mut net = cifarnet::bench_scale(cfg.classes, ConvMode::reuse_default(), &mut rng);
    let mut data_rng = rng.split(1);
    let mut pixels = vec![0.0f32; cfg.batch * 16 * 16 * 3];
    data_rng.fill_gauss(&mut pixels);
    let images =
        Tensor4::from_vec(cfg.batch, 16, 16, 3, pixels).expect("bench image shape is consistent");
    let labels: Vec<usize> = (0..cfg.batch).map(|_| data_rng.below(cfg.classes)).collect();
    let mut sgd = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0);
    let mut loss = f32::NAN;
    for _ in 0..cfg.steps {
        adr_obs::begin_step();
        loss = net.train_batch(&images, &labels, &mut sgd).loss;
    }
    (net, loss)
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs the step-profile workload three ways — uninstrumented, with the
/// `NullSink`, and with a collecting [`Recorder`] — and assembles the
/// `BENCH_train.json` document: per-layer per-phase wall time, actual vs.
/// exact FLOPs, and modelled (Eq. 5/6/12/20) vs. measured relative cost.
pub fn run_train_bench(cfg: &BenchConfig) -> Json {
    // Warm-up pass so first-touch allocation noise doesn't land in either
    // timed variant.
    let _ = train_workload(cfg);

    // Overhead measurement: best-of-two per variant, so one scheduler
    // hiccup doesn't masquerade as instrumentation cost.
    let timed = |cfg: &BenchConfig| {
        let start = Instant::now();
        let _ = train_workload(cfg);
        elapsed_ns(start)
    };

    // Baseline: no sink installed — the compiled-in default path.
    let bare_ns = timed(cfg).min(timed(cfg));

    // NullSink installed: instrumentation calls reach a discarding sink.
    let null_ns = {
        let _guard = adr_obs::install(Rc::new(adr_obs::NullSink));
        timed(cfg).min(timed(cfg))
    };
    let overhead_pct =
        if bare_ns == 0 { 0.0 } else { (null_ns as f64 - bare_ns as f64) / bare_ns as f64 * 100.0 };

    // Recorder installed: the measured run the document reports.
    let recorder = Recorder::new();
    let guard = adr_obs::install(Rc::new(recorder.clone()));
    let start = Instant::now();
    let (mut net, loss_final) = train_workload(cfg);
    let wall_ns = elapsed_ns(start);
    drop(guard);

    let mut layers = Vec::new();
    let mut flops_actual_total = 0u64;
    let mut flops_exact_total = 0u64;
    for layer in net.layers_mut() {
        let name = layer.name().to_string();
        let actual = layer.flops();
        let exact = layer.baseline_flops();
        let Some(reuse) = layer.as_any_mut().and_then(|a| a.downcast_mut::<ReuseConv2d>()) else {
            continue;
        };
        let stats = reuse.stats();
        flops_actual_total += actual.total();
        flops_exact_total += exact.total();
        let mut wall = Vec::new();
        let mut layer_total_ns = 0u64;
        for phase in Phase::ALL {
            let stat = recorder
                .time(PHASE_TIME_METRIC, &[("layer", name.as_str()), ("phase", phase.as_str())])
                .unwrap_or_default();
            layer_total_ns += stat.total_ns;
            wall.push((phase.as_str(), Json::Uint(stat.total_ns)));
        }
        wall.push(("total", Json::Uint(layer_total_ns)));
        let measured_cost =
            if exact.total() == 0 { 1.0 } else { actual.total() as f64 / exact.total() as f64 };
        layers.push(obj(vec![
            ("layer", Json::Str(name.clone())),
            ("wall_ns", obj(wall)),
            ("flops_actual", Json::Uint(actual.total())),
            ("flops_exact", Json::Uint(exact.total())),
            ("rc", Json::Num(stats.avg_remaining_ratio)),
            ("clusters_avg", Json::Num(stats.avg_clusters)),
            ("reuse_rate", Json::Num(stats.reuse_rate)),
            ("modelled_cost", Json::Num(reuse.modelled_step_cost().unwrap_or(1.0))),
            ("measured_cost", Json::Num(measured_cost)),
        ]));
    }

    let flop_savings = if flops_exact_total == 0 {
        0.0
    } else {
        1.0 - flops_actual_total as f64 / flops_exact_total as f64
    };
    obj(vec![
        ("schema", Json::Str(adr_obs::bench::TRAIN_SCHEMA.to_string())),
        (
            "workload",
            obj(vec![
                ("model", Json::Str("cifarnet".to_string())),
                ("classes", Json::Uint(u64_of(cfg.classes))),
                ("batch", Json::Uint(u64_of(cfg.batch))),
                ("steps", Json::Uint(u64_of(cfg.steps))),
                ("seed", Json::Uint(cfg.seed)),
                ("quick", Json::Bool(cfg.quick)),
            ]),
        ),
        ("layers", Json::Arr(layers)),
        (
            "totals",
            obj(vec![
                ("wall_ns", Json::Uint(wall_ns)),
                ("flops_actual", Json::Uint(flops_actual_total)),
                ("flops_exact", Json::Uint(flops_exact_total)),
                ("flop_savings", Json::Num(flop_savings)),
                ("loss_final", Json::Num(f64::from(loss_final))),
                ("null_sink_overhead_pct", Json::Num(overhead_pct)),
            ]),
        ),
    ])
}

/// Runs the multi-tenant serving burst and assembles the
/// `BENCH_serve.json` document (`adr-bench-serve/v2`): gateway-wide
/// totals, per-tenant counters with stage attribution, per-model
/// generation and swap accounting, latency buckets, and actual-vs-exact
/// FLOPs. The report is also re-exported through the telemetry schema so
/// the recorder path stays covered.
///
/// The workload exercises every admission outcome deterministically: a
/// `steady` tenant with headroom completes all its requests on the exact
/// path, a `burst` tenant with a tiny token bucket has the tail of its
/// burst rate-limited, and one mid-burst hot swap (to the same artifact)
/// bumps the model generation without dropping anything in flight.
pub fn run_serve_bench(cfg: &BenchConfig) -> Result<Json, String> {
    let mut rng = AdrRng::seeded(cfg.seed);
    let mut net = cifarnet::bench_scale(cfg.classes, ConvMode::reuse_default(), &mut rng);

    // The registry loads artifacts from disk, so the seeded weights make a
    // round trip through a real checkpoint file.
    let artifact =
        std::env::temp_dir().join(format!("adr-bench-serve-{}.adr1", std::process::id()));
    Checkpoint::capture(&mut net)
        .save(&artifact)
        .map_err(|e| format!("writing bench artifact: {e}"))?;
    let cleanup = |r: Result<Json, String>| {
        let _ = std::fs::remove_file(&artifact);
        r
    };

    let gateway_cfg = GatewayConfig {
        queue_capacity: cfg.requests.max(4),
        max_batch: 4,
        ..GatewayConfig::default()
    };
    let mut gateway = match Gateway::with_clock(gateway_cfg, Box::new(ManualClock::new())) {
        Ok(gw) => gw,
        Err(e) => return cleanup(Err(format!("gateway construction failed: {e}"))),
    };
    let (classes, seed) = (cfg.classes, cfg.seed);
    let factory: NetFactory = Box::new(move || {
        let mut rng = AdrRng::seeded(seed);
        cifarnet::bench_scale(classes, ConvMode::reuse_default(), &mut rng)
    });
    if let Err(e) = gateway.register_model("cifarnet", ArtifactKind::Adr1, &artifact, factory) {
        return cleanup(Err(format!("registering bench model: {e}")));
    }
    // `steady` has headroom for the whole burst; `burst` holds two tokens
    // and refills at 1/s of virtual time — which never advances under the
    // manual clock, so the tail of its burst is rate-limited.
    let steady = TenantConfig { rate_per_sec: 1_000, burst: 64, ..TenantConfig::default() };
    let bursty = TenantConfig { rate_per_sec: 1, burst: 2, ..TenantConfig::default() };
    if let Err(e) = gateway.add_tenant("steady", steady) {
        return cleanup(Err(format!("adding steady tenant: {e}")));
    }
    if let Err(e) = gateway.add_tenant("burst", bursty) {
        return cleanup(Err(format!("adding burst tenant: {e}")));
    }

    let mut data_rng = rng.split(2);
    let mut images = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        let mut pixels = vec![0.0f32; 16 * 16 * 3];
        data_rng.fill_gauss(&mut pixels);
        let image = Tensor4::from_vec(1, 16, 16, 3, pixels)
            .ok_or_else(|| "bench image shape is inconsistent".to_string());
        match image {
            Ok(img) => images.push(img),
            Err(e) => return cleanup(Err(e)),
        }
    }

    let start = Instant::now();
    for (i, image) in images.iter().enumerate() {
        let tenant = if i % 2 == 0 { "steady" } else { "burst" };
        // Rejections (the burst tenant's rate-limited tail) are part of
        // the workload, not errors.
        let _ = gateway.submit("cifarnet", tenant, image);
    }
    // Zero-downtime swap with the whole burst still queued: the baseline
    // pins generation 1 with nothing dropped.
    if let Err(e) = gateway.swap("cifarnet", &artifact) {
        return cleanup(Err(format!("bench hot swap failed: {e}")));
    }
    let outcomes = gateway.drain();
    let wall_ns = elapsed_ns(start);
    let _ = std::fs::remove_file(&artifact);
    let completed = outcomes.iter().filter(|(_, r)| r.is_ok()).count();
    let report = gateway.into_report();
    if completed == 0 {
        return Err("serving burst completed no requests".to_string());
    }

    // Round-trip the report through the unified schema: what an operator's
    // scrape of a live gateway would see.
    let recorder = Recorder::new();
    {
        let _guard = adr_obs::install(Rc::new(recorder.clone()));
        report.export_metrics();
    }

    let counters =
        obj(report.counters().into_iter().map(|(name, v)| (name, Json::Uint(v))).collect());
    let tenants = Json::Obj(
        report
            .tenants
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    obj(vec![
                        ("admitted", Json::Uint(c.admitted)),
                        ("completed", Json::Uint(c.completed)),
                        ("rejected_shape", Json::Uint(c.rejected_shape)),
                        ("rejected_non_finite", Json::Uint(c.rejected_non_finite)),
                        ("shed_overloaded", Json::Uint(c.shed_overloaded)),
                        ("rate_limited", Json::Uint(c.rate_limited)),
                        ("deadline_missed", Json::Uint(c.deadline_missed)),
                        ("failed_non_finite", Json::Uint(c.failed_non_finite)),
                        (
                            "requests_per_stage",
                            Json::Arr(
                                c.requests_per_stage.iter().map(|&n| Json::Uint(n)).collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let models = Json::Obj(
        report
            .models
            .iter()
            .map(|(name, m)| {
                (
                    name.clone(),
                    obj(vec![
                        ("batches", Json::Uint(m.batches)),
                        ("generation", Json::Uint(m.generation)),
                        ("swaps_completed", Json::Uint(m.swaps_completed)),
                        ("swaps_rolled_back", Json::Uint(m.swaps_rolled_back)),
                        ("flops_actual", Json::Uint(m.flops_actual)),
                        ("flops_exact", Json::Uint(m.flops_exact)),
                    ]),
                )
            })
            .collect(),
    );
    let flops_actual: u64 = report.models.values().map(|m| m.flops_actual).sum();
    let flops_exact: u64 = report.models.values().map(|m| m.flops_exact).sum();
    let flop_savings =
        if flops_exact == 0 { 0.0 } else { 1.0 - flops_actual as f64 / flops_exact as f64 };
    Ok(obj(vec![
        ("schema", Json::Str(adr_obs::bench::SERVE_SCHEMA.to_string())),
        (
            "workload",
            obj(vec![
                ("model", Json::Str("cifarnet".to_string())),
                ("classes", Json::Uint(u64_of(cfg.classes))),
                ("requests", Json::Uint(u64_of(cfg.requests))),
                ("max_batch", Json::Uint(4)),
                ("tenants", Json::Uint(2)),
                ("seed", Json::Uint(cfg.seed)),
                ("quick", Json::Bool(cfg.quick)),
            ]),
        ),
        ("counters", counters),
        ("tenants", tenants),
        ("models", models),
        (
            "latency_bucket_counts",
            Json::Arr(report.latency.counts().iter().map(|&n| Json::Uint(n)).collect()),
        ),
        ("flops_actual", Json::Uint(flops_actual)),
        ("flops_exact", Json::Uint(flops_exact)),
        ("flop_savings", Json::Num(flop_savings)),
        ("wall_ns", Json::Uint(wall_ns)),
        ("scrape_counters", Json::Uint(u64_of(recorder.counters().len()))),
    ]))
}

/// Noise floor for wall-time share comparison: a phase whose *baseline*
/// share of its layer's total is below this is dominated by timer jitter
/// at bench scale and is not gated.
const SHARE_NOISE_FLOOR: f64 = 0.05;

fn rel_diff(base: f64, fresh: f64) -> f64 {
    if base == 0.0 {
        return if fresh == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((fresh - base) / base).abs()
}

fn field_f64(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

/// Checks that the two documents describe the *same workload* (model,
/// sizing, seed); a comparison across different workloads is meaningless
/// and reported as a violation rather than silently tolerated.
fn check_workload(base: &Json, fresh: &Json, out: &mut Vec<String>, doc: &str) {
    let (Some(b), Some(f)) = (base.get("workload"), fresh.get("workload")) else {
        out.push(format!("{doc}: workload section missing"));
        return;
    };
    if b != f {
        out.push(format!(
            "{doc}: workload mismatch — baseline {} vs fresh {}",
            b.render_pretty().replace('\n', " "),
            f.render_pretty().replace('\n', " ")
        ));
    }
}

/// Compares a fresh `BENCH_train.json` against a committed baseline.
///
/// Two gates per layer:
/// * **FLOP attribution** (`flops_actual`, `flops_exact`, `rc`,
///   `reuse_rate`): deterministic for a fixed seed, so the relative
///   difference must stay within `tol` (0 would also be defensible; the
///   tolerance keeps the gate robust to intentional cost-model tuning
///   that ships with a re-baseline).
/// * **Wall-time shape**: absolute wall times are machine-dependent, so
///   each phase's *share of its layer's total* is compared instead, with
///   an absolute-difference bound of `tol` and a [`SHARE_NOISE_FLOOR`]
///   on the baseline share.
///
/// Returns the list of violations (empty = pass).
pub fn compare_train(base: &Json, fresh: &Json, tol: f64) -> Vec<String> {
    let mut out = Vec::new();
    check_workload(base, fresh, &mut out, "BENCH_train");
    let (Some(base_layers), Some(fresh_layers)) =
        (base.get("layers").and_then(Json::as_arr), fresh.get("layers").and_then(Json::as_arr))
    else {
        out.push("BENCH_train: layers section missing".to_string());
        return out;
    };
    if base_layers.len() != fresh_layers.len() {
        out.push(format!(
            "BENCH_train: layer count changed ({} -> {})",
            base_layers.len(),
            fresh_layers.len()
        ));
        return out;
    }
    for (b, f) in base_layers.iter().zip(fresh_layers) {
        let name = b.get("layer").and_then(Json::as_str).unwrap_or("?");
        if f.get("layer").and_then(Json::as_str) != Some(name) {
            out.push(format!("BENCH_train: layer order changed at `{name}`"));
            continue;
        }
        for field in ["flops_actual", "flops_exact", "rc", "reuse_rate"] {
            let (Some(bv), Some(fv)) = (field_f64(b, &[field]), field_f64(f, &[field])) else {
                out.push(format!("BENCH_train/{name}: `{field}` missing"));
                continue;
            };
            let diff = rel_diff(bv, fv);
            if diff > tol {
                out.push(format!(
                    "BENCH_train/{name}: `{field}` drifted {:.1}% (baseline {bv}, fresh {fv}, \
                     tolerance {:.0}%)",
                    diff * 100.0,
                    tol * 100.0
                ));
            }
        }
        let (Some(bt), Some(ft)) =
            (field_f64(b, &["wall_ns", "total"]), field_f64(f, &["wall_ns", "total"]))
        else {
            out.push(format!("BENCH_train/{name}: wall_ns.total missing"));
            continue;
        };
        if bt <= 0.0 || ft <= 0.0 {
            out.push(format!("BENCH_train/{name}: non-positive wall_ns.total"));
            continue;
        }
        for phase in ["im2col", "hash", "cluster", "centroid_gemm", "scatter"] {
            let (Some(bp), Some(fp)) =
                (field_f64(b, &["wall_ns", phase]), field_f64(f, &["wall_ns", phase]))
            else {
                out.push(format!("BENCH_train/{name}: wall_ns.{phase} missing"));
                continue;
            };
            let base_share = bp / bt;
            let fresh_share = fp / ft;
            if base_share < SHARE_NOISE_FLOOR {
                continue;
            }
            let diff = (fresh_share - base_share).abs();
            if diff > tol {
                out.push(format!(
                    "BENCH_train/{name}: `{phase}` wall-time share moved from {:.1}% to {:.1}% \
                     (> {:.0} points)",
                    base_share * 100.0,
                    fresh_share * 100.0,
                    tol * 100.0
                ));
            }
        }
    }
    out
}

/// Compares two same-named counter objects exactly, prefixing violations
/// with `label` (e.g. `BENCH_serve/tenants.steady`).
fn compare_counter_obj(base: &Json, fresh: Option<&Json>, label: &str, out: &mut Vec<String>) {
    let Some(bc) = base.as_obj() else {
        out.push(format!("{label}: not an object in the baseline"));
        return;
    };
    let Some(fresh) = fresh else {
        out.push(format!("{label}: missing from the fresh document"));
        return;
    };
    for (key, bv) in bc {
        // Per-stage attribution arrays and scalar counters both compare
        // exactly — the burst is seeded, so any drift is a regression.
        let fv = fresh.get(key);
        if fv != Some(bv) {
            out.push(format!(
                "{label}: `{key}` changed (baseline {}, fresh {})",
                bv.render_pretty().replace('\n', " "),
                fv.map_or("<missing>".to_string(), |v| v.render_pretty().replace('\n', " "))
            ));
        }
    }
}

/// Compares a fresh `BENCH_serve.json` against a committed baseline:
/// the gateway-wide counter set, every tenant's counters and per-stage
/// attribution, and every model's generation/swap accounting are
/// deterministic under the seeded burst and must match exactly; the
/// FLOP totals get the same `tol` relative bound as the training gate.
pub fn compare_serve(base: &Json, fresh: &Json, tol: f64) -> Vec<String> {
    let mut out = Vec::new();
    check_workload(base, fresh, &mut out, "BENCH_serve");
    match base.get("counters") {
        Some(bc) => {
            compare_counter_obj(bc, fresh.get("counters"), "BENCH_serve/counters", &mut out)
        }
        None => out.push("BENCH_serve: counters section missing".to_string()),
    }
    for section in ["tenants", "models"] {
        let (Some(bs), fs) = (base.get(section), fresh.get(section)) else {
            out.push(format!("BENCH_serve: {section} section missing"));
            continue;
        };
        let Some(base_entries) = bs.as_obj() else {
            out.push(format!("BENCH_serve: {section} is not an object"));
            continue;
        };
        for (name, bv) in base_entries {
            compare_counter_obj(
                bv,
                fs.and_then(|f| f.get(name)),
                &format!("BENCH_serve/{section}.{name}"),
                &mut out,
            );
        }
        let fresh_len = fs.and_then(Json::as_obj).map_or(0, <[_]>::len);
        if fresh_len != base_entries.len() {
            out.push(format!(
                "BENCH_serve: {section} entry count changed ({} -> {fresh_len})",
                base_entries.len()
            ));
        }
    }
    for field in ["flops_actual", "flops_exact"] {
        let (Some(bv), Some(fv)) = (field_f64(base, &[field]), field_f64(fresh, &[field])) else {
            out.push(format!("BENCH_serve: `{field}` missing"));
            continue;
        };
        let diff = rel_diff(bv, fv);
        if diff > tol {
            out.push(format!(
                "BENCH_serve: `{field}` drifted {:.1}% (baseline {bv}, fresh {fv}, \
                 tolerance {:.0}%)",
                diff * 100.0,
                tol * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn train_bench_emits_a_schema_valid_document() {
        let doc = run_train_bench(&BenchConfig::quick());
        adr_obs::bench::validate(&doc).unwrap();
        // Round-trip through bytes, as CI does.
        let reparsed = Json::parse(&doc.render_pretty()).unwrap();
        adr_obs::bench::validate(&reparsed).unwrap();
    }

    #[test]
    fn serve_bench_emits_a_schema_valid_document() {
        let doc = run_serve_bench(&BenchConfig::quick()).unwrap();
        adr_obs::bench::validate(&doc).unwrap();
        // 8 requests split across two tenants: steady's 4 all admitted,
        // burst's 4 hit a 2-token bucket — 2 admitted, 2 rate-limited.
        let counter = |key: &str| doc.get("counters").unwrap().get(key).and_then(Json::as_u64);
        assert_eq!(counter("admitted"), Some(6));
        assert_eq!(counter("rate_limited"), Some(2));
        let burst = doc.get("tenants").unwrap().get("burst").unwrap();
        assert_eq!(burst.get("rate_limited").and_then(Json::as_u64), Some(2));
        // The mid-burst hot swap flipped the generation without dropping
        // anything in flight.
        let model = doc.get("models").unwrap().get("cifarnet").unwrap();
        assert_eq!(model.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(model.get("swaps_completed").and_then(Json::as_u64), Some(1));
        assert_eq!(counter("completed"), Some(6));
    }

    fn train_doc(hash_ns: u64, flops_actual: u64) -> Json {
        Json::parse(&format!(
            r#"{{
              "workload": {{"model": "cifarnet", "classes": 4, "batch": 4, "steps": 2,
                            "seed": 42, "quick": true}},
              "layers": [{{
                "layer": "conv1",
                "wall_ns": {{"im2col": 100, "hash": {hash_ns}, "cluster": 100,
                             "centroid_gemm": 200, "scatter": 100,
                             "total": {total}}},
                "flops_actual": {flops_actual}, "flops_exact": 29491200,
                "rc": 0.148, "reuse_rate": 0.0
              }}]
            }}"#,
            total = 500 + hash_ns,
        ))
        .unwrap()
    }

    #[test]
    fn identical_train_documents_compare_clean() {
        let base = train_doc(500, 8_238_720);
        assert_eq!(compare_train(&base, &base, 0.15), Vec::<String>::new());
    }

    #[test]
    fn train_wall_share_and_flop_drift_are_caught() {
        let base = train_doc(500, 8_238_720);
        // hash goes from 50% of the layer to ~86%: a share regression.
        let slow_hash = train_doc(3000, 8_238_720);
        let violations = compare_train(&base, &slow_hash, 0.15);
        assert!(violations.iter().any(|v| v.contains("`hash` wall-time share")), "{violations:#?}");
        // FLOP attribution is seeded-deterministic: +30% actual FLOPs fails.
        let more_flops = train_doc(500, 10_710_336);
        let violations = compare_train(&base, &more_flops, 0.15);
        assert!(violations.iter().any(|v| v.contains("`flops_actual` drifted")), "{violations:#?}");
        // Both drifts pass under a looser tolerance.
        assert!(compare_train(&base, &more_flops, 0.5).is_empty());
    }

    #[test]
    fn train_workload_mismatch_is_a_violation() {
        let base = train_doc(500, 8_238_720);
        let mut other = train_doc(500, 8_238_720);
        let Json::Obj(top) = &mut other else { panic!() };
        top.iter_mut().find(|(k, _)| k == "workload").unwrap().1 = Json::Obj(vec![
            ("model".into(), Json::Str("cifarnet".into())),
            ("seed".into(), Json::Uint(7)),
        ]);
        let violations = compare_train(&base, &other, 0.15);
        assert!(violations.iter().any(|v| v.contains("workload mismatch")), "{violations:#?}");
    }

    #[test]
    fn serve_counter_changes_are_exact_failures() {
        let base = run_serve_bench(&BenchConfig::quick()).unwrap();
        assert_eq!(compare_serve(&base, &base, 0.15), Vec::<String>::new());
        let mut fresh = run_serve_bench(&BenchConfig::quick()).unwrap();
        let Json::Obj(top) = &mut fresh else { panic!() };
        let Json::Obj(counters) = &mut top.iter_mut().find(|(k, _)| k == "counters").unwrap().1
        else {
            panic!()
        };
        counters.iter_mut().find(|(k, _)| k == "deadline_missed").unwrap().1 = Json::Uint(3);
        let violations = compare_serve(&base, &fresh, 0.15);
        assert!(
            violations.iter().any(|v| v.contains("`deadline_missed` changed")),
            "{violations:#?}"
        );
    }

    #[test]
    fn serve_tenant_and_model_drift_are_exact_failures() {
        let base = run_serve_bench(&BenchConfig::quick()).unwrap();
        // A tenant's stage attribution shifting is a violation even when
        // the gateway-wide totals happen to stay put.
        let mut fresh = run_serve_bench(&BenchConfig::quick()).unwrap();
        let Json::Obj(top) = &mut fresh else { panic!() };
        let Json::Obj(tenants) = &mut top.iter_mut().find(|(k, _)| k == "tenants").unwrap().1
        else {
            panic!()
        };
        let Json::Obj(steady) = &mut tenants.iter_mut().find(|(k, _)| k == "steady").unwrap().1
        else {
            panic!()
        };
        steady.iter_mut().find(|(k, _)| k == "requests_per_stage").unwrap().1 =
            Json::Arr(vec![Json::Uint(0), Json::Uint(4)]);
        let violations = compare_serve(&base, &fresh, 0.15);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("tenants.steady") && v.contains("requests_per_stage")),
            "{violations:#?}"
        );

        // A silent extra swap shows up through the model section.
        let mut fresh = run_serve_bench(&BenchConfig::quick()).unwrap();
        let Json::Obj(top) = &mut fresh else { panic!() };
        let Json::Obj(models) = &mut top.iter_mut().find(|(k, _)| k == "models").unwrap().1 else {
            panic!()
        };
        let Json::Obj(model) = &mut models.iter_mut().find(|(k, _)| k == "cifarnet").unwrap().1
        else {
            panic!()
        };
        model.iter_mut().find(|(k, _)| k == "generation").unwrap().1 = Json::Uint(2);
        let violations = compare_serve(&base, &fresh, 0.15);
        assert!(
            violations.iter().any(|v| v.contains("models.cifarnet") && v.contains("generation")),
            "{violations:#?}"
        );
    }
}
